// Quickstart: load a CSV, register an expensive predicate, and compare an
// exact query against an approximate one with precision/recall bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"

	"repro"
	"repro/internal/stats"
)

func main() {
	// Build a small loans table in memory: the hidden credit outcome
	// correlates with the grade column (A: 90%, B: 50%, C: 10% good).
	const n = 6000
	rng := stats.NewRNG(2024)
	var csv strings.Builder
	csv.WriteString("id,grade,amount\n")
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	goodRate := []float64{0.9, 0.5, 0.1}
	for i := 0; i < n; i++ {
		g := i % 3
		truth[int64(i)] = rng.Bernoulli(goodRate[g])
		fmt.Fprintf(&csv, "%d,%s,%.2f\n", i, grades[g], 1000+rng.Float64()*24000)
	}

	db := predeval.Open(42)
	// The engine memoizes UDF outcomes across queries by default; disable
	// that here so the exact and approximate runs have independently
	// comparable costs (production traffic wants it on).
	db.SetUDFCache(false)
	if err := db.LoadCSV("loans", strings.NewReader(csv.String())); err != nil {
		log.Fatal(err)
	}

	// The "expensive" UDF: pretend each call hits a credit bureau. Cost 3
	// per call vs 1 per tuple retrieval (the paper's default ratio). The
	// counter is atomic because the engine fans UDF calls across workers.
	var bureauCalls atomic.Int64
	err := db.RegisterUDF("good_credit", func(v any) bool {
		bureauCalls.Add(1)
		return truth[v.(int64)]
	}, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Exact query: evaluates the UDF on every tuple.
	exact, err := db.Query("SELECT id, grade FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:       %5d rows, %5d UDF calls, cost %6.0f\n",
		exact.Len(), exact.Stats().Evaluations, exact.Stats().Cost)

	// Approximate query: 90% precision and recall, each with probability
	// 90%. The engine discovers that grade predicts the UDF, samples a few
	// tuples per grade, and skips or trusts whole groups.
	approx, err := db.Query(`SELECT id, grade FROM loans WHERE good_credit(id) = 1
		WITH PRECISION 0.9 RECALL 0.9 PROBABILITY 0.9`)
	if err != nil {
		log.Fatal(err)
	}
	st := approx.Stats()
	fmt.Printf("approximate: %5d rows, %5d UDF calls, cost %6.0f  (correlated column: %s)\n",
		approx.Len(), st.Evaluations, st.Cost, st.ChosenColumn)

	// Score the approximate answer against the ground truth.
	totalGood := 0
	for _, v := range truth {
		if v {
			totalGood++
		}
	}
	correct := 0
	for _, id := range approx.RowIDs() {
		if truth[int64(id)] {
			correct++
		}
	}
	fmt.Printf("achieved:    precision %.3f, recall %.3f\n",
		float64(correct)/float64(approx.Len()), float64(correct)/float64(totalGood))
	fmt.Printf("savings:     %.0f%% fewer UDF calls than exact\n",
		100*(1-float64(st.Evaluations)/float64(exact.Stats().Evaluations)))
}
