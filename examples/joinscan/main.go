// Joinscan demonstrates the Section 5 selection-before-join extension: the
// selected loans are later joined with a payments table, so a loan that
// joins with many payments matters more to join-result precision/recall.
// The optimizer weighs each tuple by its join multiplicity — it will
// verify a mediocre-selectivity loan with many payments before a
// high-selectivity loan with none.
//
//	go run ./examples/joinscan
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/table"
)

func main() {
	spec := dataset.LendingClub.Scaled(0.1) // ~5.3k loans
	d, err := dataset.Generate(spec, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Payments: low-grade loans generate many more payment rows (smaller
	// installments), inverting the usual priorities.
	rng := stats.NewRNG(17)
	grades, err := d.Table.StringColumn("grade")
	if err != nil {
		log.Fatal(err)
	}
	var payments bytes.Buffer
	payments.WriteString("loan_id,amount\n")
	paymentRows := 0
	for row := 0; row < d.Table.NumRows(); row++ {
		mult := 1
		if grades.At(row) >= "E" { // late alphabet = low grade = many payments
			mult = 6
		}
		for k := 0; k < mult; k++ {
			fmt.Fprintf(&payments, "%d,%.2f\n", row, 50+rng.Float64()*500)
			paymentRows++
		}
	}

	var loansCSV bytes.Buffer
	if err := table.WriteCSV(d.Table, &loansCSV); err != nil {
		log.Fatal(err)
	}

	db := predeval.Open(23)
	if err := db.LoadCSV("loans", &loansCSV); err != nil {
		log.Fatal(err)
	}
	if err := db.LoadCSV("payments", &payments); err != nil {
		log.Fatal(err)
	}
	truth := d.Truth()
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		return truth(int(v.(int64)))
	}, 3); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loans: %d, payments: %d\n", d.Table.NumRows(), paymentRows)

	rows, err := db.Query(`SELECT id, grade FROM loans
		JOIN payments ON loans.id = payments.loan_id
		WHERE good_credit(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8
		GROUP ON grade`)
	if err != nil {
		log.Fatal(err)
	}
	st := rows.Stats()
	fmt.Printf("selected %d loans with %d UDF calls (cost %.0f)\n",
		rows.Len(), st.Evaluations, st.Cost)

	// Join-weighted quality: every loan counts once per matching payment.
	mult := map[int]int{}
	for row := 0; row < d.Table.NumRows(); row++ {
		if grades.At(row) >= "E" {
			mult[row] = 6
		} else {
			mult[row] = 1
		}
	}
	weightedCorrect, weightedOut, weightedTotal := 0, 0, 0
	for row := 0; row < d.Table.NumRows(); row++ {
		if truth(row) {
			weightedTotal += mult[row]
		}
	}
	for _, id := range rows.RowIDs() {
		weightedOut += mult[id]
		if truth(id) {
			weightedCorrect += mult[id]
		}
	}
	fmt.Printf("join-result precision %.3f, recall %.3f (weighted by payment multiplicity)\n",
		float64(weightedCorrect)/float64(weightedOut),
		float64(weightedCorrect)/float64(weightedTotal))
}
