// Creditcheck reproduces the paper's motivating scenario (Section 1) with
// the library-level API instead of SQL: a bank wants to contact customers
// with good credit, each credit check costs money, and the loan grade
// correlates with the outcome. The example prints the per-grade execution
// strategy the optimizer chooses — which grades it trusts outright, which
// it verifies, and which it discards.
//
//	go run ./examples/creditcheck
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

func main() {
	// A LendingClub-like portfolio (calibrated synthetic; see DESIGN.md).
	spec := dataset.LendingClub.Scaled(0.25) // ~13k loans for a quick demo
	d, err := dataset.Generate(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portfolio: %d loans, %.0f%% with good outcomes\n",
		d.Table.NumRows(), 100*d.OverallSelectivity())

	cons := core.Constraints{Alpha: 0.9, Beta: 0.9, Rho: 0.9}
	in, err := d.Instance(cons, core.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}

	rng := stats.NewRNG(99)
	res, err := core.RunIntelSample(in, core.RunOptions{RNG: rng})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-grade strategy (R = retrieve prob., E = evaluate prob.):")
	groups, _ := d.PredictorGroups()
	for i, g := range groups {
		var verdict string
		switch {
		case res.Strategy.R[i] < 0.05:
			verdict = "discard (credit almost never good)"
		case res.Strategy.E[i] > 0.95*res.Strategy.R[i]:
			verdict = "verify every retrieved customer"
		case res.Strategy.E[i] < 0.05:
			verdict = "trust without checking"
		default:
			verdict = "verify a fraction"
		}
		fmt.Printf("  grade %s: %5d loans  est. good %.2f  R=%.2f E=%.2f  → %s\n",
			g.Key, len(g.Rows), res.Infos[i].Selectivity,
			res.Strategy.R[i], res.Strategy.E[i], verdict)
	}

	m := core.ComputeMetrics(res.Output, d.Truth(), d.TotalCorrect())
	fmt.Printf("\ncampaign list: %d customers\n", len(res.Output))
	fmt.Printf("credit checks: %d (vs %d for the exact query)\n",
		res.TotalEvaluations, d.Table.NumRows())
	fmt.Printf("achieved precision %.3f (bound %.2f), recall %.3f (bound %.2f)\n",
		m.Precision, cons.Alpha, m.Recall, cons.Beta)
	fmt.Printf("total cost %.0f vs %.0f exact — %.0f%% cheaper\n",
		res.TotalCost, float64(d.Table.NumRows())*4,
		100*(1-res.TotalCost/(float64(d.Table.NumRows())*4)))
}
