// Moderation demonstrates conjunctions of two expensive predicates
// (Section 5): a content platform wants posts that are BOTH relevant to a
// campaign AND safe, where each check is a separate crowd task. The
// optimizer trades accuracy between the two predicates per topic group —
// topics that rarely pass the relevance check never pay for the safety
// check at all.
//
//	go run ./examples/moderation
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"

	"repro"
	"repro/internal/stats"
)

func main() {
	const n = 9000
	rng := stats.NewRNG(31)
	topics := []string{"sports", "politics", "spam", "tech", "art", "memes"}
	relevanceRate := []float64{0.9, 0.55, 0.03, 0.8, 0.35, 0.15}
	safetyRate := []float64{0.95, 0.6, 0.3, 0.9, 0.85, 0.7}

	var csv strings.Builder
	csv.WriteString("id,topic\n")
	relevant := make(map[int64]bool, n)
	safe := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		topicIdx := i % len(topics)
		relevant[int64(i)] = rng.Bernoulli(relevanceRate[topicIdx])
		safe[int64(i)] = rng.Bernoulli(safetyRate[topicIdx])
		fmt.Fprintf(&csv, "%d,%s\n", i, topics[topicIdx])
	}

	db := predeval.Open(8)
	if err := db.LoadCSV("posts", strings.NewReader(csv.String())); err != nil {
		log.Fatal(err)
	}
	// Atomic: the engine may fan crowd tasks across concurrent workers.
	var crowdTasks atomic.Int64
	if err := db.RegisterUDF("is_relevant", func(v any) bool {
		crowdTasks.Add(1)
		return relevant[v.(int64)]
	}, 3); err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterUDF("is_safe", func(v any) bool {
		crowdTasks.Add(1)
		return safe[v.(int64)]
	}, 3); err != nil {
		log.Fatal(err)
	}

	rows, err := db.Query(`SELECT id, topic FROM posts
		WHERE is_relevant(id) = 1 AND is_safe(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8
		GROUP ON topic`)
	if err != nil {
		log.Fatal(err)
	}

	totalCorrect, correct := 0, 0
	for i := int64(0); i < n; i++ {
		if relevant[i] && safe[i] {
			totalCorrect++
		}
	}
	for _, id := range rows.RowIDs() {
		if relevant[int64(id)] && safe[int64(id)] {
			correct++
		}
	}

	fmt.Printf("posts: %d, truly relevant-and-safe: %d\n", n, totalCorrect)
	fmt.Printf("selected: %d posts with %d crowd tasks (exact evaluation would short-circuit at %d, worst case %d)\n",
		rows.Len(), crowdTasks.Load(), exactShortCircuit(relevant), 2*n)
	fmt.Printf("precision %.3f, recall %.3f\n",
		float64(correct)/float64(rows.Len()),
		float64(correct)/float64(totalCorrect))
	fmt.Printf("savings: %.0f%% fewer crowd tasks than exact short-circuit evaluation\n",
		100*(1-float64(crowdTasks.Load())/float64(exactShortCircuit(relevant))))
}

// exactShortCircuit counts the crowd tasks an exact conjunction needs:
// one relevance check per post plus one safety check per relevant post.
func exactShortCircuit(relevant map[int64]bool) int {
	tasks := len(relevant)
	for _, v := range relevant {
		if v {
			tasks++
		}
	}
	return tasks
}
