// Marketing demonstrates two advanced features on the bank-telemarketing
// scenario (UCI Bank Marketing stand-in): the logistic-regression virtual
// column (Section 6.3.2) for when no single column predicts the UDF well,
// and the fixed-budget objective (Section 5): "call at most this much —
// reach as many subscribers as possible."
//
//	go run ./examples/marketing
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/dataset"
	"repro/internal/table"
)

func main() {
	spec := dataset.Marketing.Scaled(0.25) // ~10k contacts
	d, err := dataset.Generate(spec, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign pool: %d contacts, %.1f%% would subscribe\n",
		d.Table.NumRows(), 100*d.OverallSelectivity())

	// Move the table into the SQL facade via CSV (what a user would do).
	var buf bytes.Buffer
	if err := table.WriteCSV(d.Table, &buf); err != nil {
		log.Fatal(err)
	}
	db := predeval.Open(11)
	// Keep the two campaign runs' costs independently comparable: disable
	// the cross-query UDF cache (production traffic wants it on).
	db.SetUDFCache(false)
	if err := db.LoadCSV("contacts", &buf); err != nil {
		log.Fatal(err)
	}
	truth := d.Truth()
	if err := db.RegisterUDF("will_subscribe", func(v any) bool {
		return truth(int(v.(int64)))
	}, 3); err != nil {
		log.Fatal(err)
	}

	// 1. The virtual column: let a logistic regression combine all the
	// feature columns into one predictor, bucketed into 10 groups.
	rows, err := db.Query(`SELECT id FROM contacts WHERE will_subscribe(id) = 1
		WITH PRECISION 0.7 RECALL 0.8 PROBABILITY 0.8 GROUP ON virtual`)
	if err != nil {
		log.Fatal(err)
	}
	report("virtual column", d, rows)

	// 2. A fixed budget: precision at least 0.7, spend at most 8000 cost
	// units, maximize how many subscribers we reach.
	budget, err := db.Query(`SELECT id FROM contacts WHERE will_subscribe(id) = 1
		WITH PRECISION 0.7 PROBABILITY 0.8 GROUP ON emp_var_rate BUDGET 8000`)
	if err != nil {
		log.Fatal(err)
	}
	report("budget 8000", d, budget)
	fmt.Printf("  planner could afford a recall bound of %.2f\n",
		budget.Stats().AchievedRecallBound)
}

func report(name string, d *dataset.Dataset, rows *predeval.Rows) {
	truth := d.Truth()
	correct := 0
	for _, id := range rows.RowIDs() {
		if truth(id) {
			correct++
		}
	}
	prec := 0.0
	if rows.Len() > 0 {
		prec = float64(correct) / float64(rows.Len())
	}
	recall := float64(correct) / float64(d.TotalCorrect())
	st := rows.Stats()
	fmt.Printf("\n%s:\n  %d rows, %d UDF calls, cost %.0f\n  precision %.3f recall %.3f\n",
		name, rows.Len(), st.Evaluations, st.Cost, prec, recall)
}
