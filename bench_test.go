// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md's experiment
// index), plus micro-benchmarks for the optimizer's hot paths. The
// experiment benchmarks run the same harness as cmd/exppred at a reduced
// dataset scale so `go test -bench=.` finishes quickly; run
// `go run ./cmd/exppred -exp all` for paper-scale numbers.
package predeval_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	predeval "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// benchScale keeps experiment benchmarks fast while preserving the
// datasets' distributional statistics.
const benchScale = 0.04

func benchRunner(b *testing.B, iters int) *experiments.Runner {
	b.Helper()
	return experiments.New(experiments.Config{Seed: 1, Scale: benchScale, Iterations: iters})
}

func runExperiment(b *testing.B, id string, iters int) {
	b.Helper()
	r := benchRunner(b, iters)
	// Generate datasets outside the timed region.
	for _, name := range experiments.DatasetNames() {
		if _, err := r.Dataset(name); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------- tables & figures

func BenchmarkTable1Example(b *testing.B)          { runExperiment(b, "table1", 1) }
func BenchmarkTable2Savings(b *testing.B)          { runExperiment(b, "table2", 2) }
func BenchmarkTable3GroupStats(b *testing.B)       { runExperiment(b, "table3", 1) }
func BenchmarkFig1aCostComparison(b *testing.B)    { runExperiment(b, "fig1a", 2) }
func BenchmarkFig1bMLComparison(b *testing.B)      { runExperiment(b, "fig1b", 1) }
func BenchmarkFig1cLogRegSweep(b *testing.B)       { runExperiment(b, "fig1c", 1) }
func BenchmarkFig2aPrecisionAccuracy(b *testing.B) { runExperiment(b, "fig2a", 2) }
func BenchmarkFig2bRecallAccuracy(b *testing.B)    { runExperiment(b, "fig2b", 2) }
func BenchmarkFig2cAlphaSweep(b *testing.B)        { runExperiment(b, "fig2c", 2) }
func BenchmarkFig3aConstantSampling(b *testing.B)  { runExperiment(b, "fig3a", 2) }
func BenchmarkFig3bTwoThirdPower(b *testing.B)     { runExperiment(b, "fig3b", 2) }
func BenchmarkFig3cBetaSweep(b *testing.B)         { runExperiment(b, "fig3c", 2) }
func BenchmarkColumnRobustness(b *testing.B)       { runExperiment(b, "columns", 1) }
func BenchmarkAdaptiveSampling(b *testing.B)       { runExperiment(b, "adaptive", 1) }
func BenchmarkSolverAblation(b *testing.B)         { runExperiment(b, "ablation-solver", 1) }
func BenchmarkCorrelationBound(b *testing.B)       { runExperiment(b, "ablation-bound", 1) }
func BenchmarkMarginAblation(b *testing.B)         { runExperiment(b, "ablation-margin", 2) }

// ------------------------------------------------- end-to-end pipeline

// BenchmarkIntelSamplePipeline measures one full Intel-Sample run
// (sample → estimate → plan → execute) on the LC stand-in, reporting the
// UDF calls it needed.
func BenchmarkIntelSamplePipeline(b *testing.B) {
	d, err := dataset.Generate(dataset.LendingClub.Scaled(0.1), 1)
	if err != nil {
		b.Fatal(err)
	}
	cons := core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	rng := stats.NewRNG(2)
	b.ResetTimer()
	totalEvals := 0.0
	for i := 0; i < b.N; i++ {
		in, err := d.Instance(cons, core.DefaultCost)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunIntelSample(in, core.RunOptions{RNG: rng.Split()})
		if err != nil {
			b.Fatal(err)
		}
		totalEvals += float64(res.TotalEvaluations)
	}
	b.ReportMetric(totalEvals/float64(b.N), "udfcalls/op")
}

// --------------------------------------------------------- micro benches

// BenchmarkBiGreedyPlanner measures the O(|A| log |A|) LP solver on a
// 64-group instance.
func BenchmarkBiGreedyPlanner(b *testing.B) {
	rng := stats.NewRNG(3)
	groups := make([]core.GroupInfo, 64)
	for i := range groups {
		groups[i] = core.GroupInfo{Size: 500 + rng.IntN(2000), Selectivity: rng.Float64()}
	}
	cons := core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanPerfectSelectivities(groups, cons, core.DefaultCost); err != nil {
			b.Fatal(err)
		}
	}
}

func estimatedBenchGroups(n int) []core.GroupInfo {
	rng := stats.NewRNG(5)
	groups := make([]core.GroupInfo, n)
	for i := range groups {
		size := 500 + rng.IntN(2000)
		sampled := 20 + rng.IntN(60)
		pos := rng.IntN(sampled + 1)
		groups[i] = core.GroupInfoFromSample(size, sampled, pos)
	}
	return groups
}

// BenchmarkConvexPlannerFixedPoint measures the relinearizing fixed-point
// solver for the estimated-selectivity convex program (64 groups).
func BenchmarkConvexPlannerFixedPoint(b *testing.B) {
	groups := estimatedBenchGroups(64)
	cons := core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanWithSamples(groups, cons, core.DefaultCost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvexPlannerGradient measures the projected-gradient solver on
// the same program (16 groups; it is the slow path).
func BenchmarkConvexPlannerGradient(b *testing.B) {
	groups := estimatedBenchGroups(16)
	cons := core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanEstimatedGradient(groups, cons, core.DefaultCost, core.IndependentGroups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutor measures probabilistic execution over 50k tuples.
func BenchmarkExecutor(b *testing.B) {
	rng := stats.NewRNG(7)
	const n = 50000
	rows := make([]int, n)
	labels := make([]bool, n)
	for i := range rows {
		rows[i] = i
		labels[i] = rng.Bernoulli(0.5)
	}
	groups := []core.Group{{Key: "all", Rows: rows}}
	s := core.NewStrategy(1)
	s.R[0], s.E[0] = 0.8, 0.3
	udf := core.UDFFunc(func(r int) bool { return labels[r] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Execute(groups, s, nil, udf, core.DefaultCost, rng.Split()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "tuples/op")
}

// BenchmarkPerfectInfoBranchBound measures the exact NP-hard solver on a
// 20-group instance.
func BenchmarkPerfectInfoBranchBound(b *testing.B) {
	rng := stats.NewRNG(11)
	groups := make([]core.PerfectInfoGroup, 20)
	for i := range groups {
		groups[i] = core.PerfectInfoGroup{
			Key:     "g",
			Correct: rng.IntN(1000),
			Wrong:   rng.IntN(1000),
		}
	}
	cons := core.Constraints{Alpha: 0.8, Beta: 0.8, Rho: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolvePerfectInformation(groups, cons, core.DefaultCost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures the SQL front end.
func BenchmarkSQLParse(b *testing.B) {
	const q = `SELECT id, grade FROM loans JOIN orders ON loans.id = orders.loan_id
		WHERE good_credit(id) = 1 WITH PRECISION 0.9 RECALL 0.85 PROBABILITY 0.9
		GROUP ON grade BUDGET 5000`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGeneration measures calibrated synthesis of the LC
// stand-in at 10% scale.
func BenchmarkDatasetGeneration(b *testing.B) {
	spec := dataset.LendingClub.Scaled(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(spec, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSQL measures a full approximate SQL query through the
// public facade.
func BenchmarkEndToEndSQL(b *testing.B) {
	d, err := dataset.Generate(dataset.Prosper.Scaled(0.1), 1)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("id,grade\n")
	gradeCol, err := d.Table.StringColumn("grade")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < d.Table.NumRows(); i++ {
		sb.WriteString(d.Table.CellString(i, 0))
		sb.WriteByte(',')
		sb.WriteString(gradeCol.At(i))
		sb.WriteByte('\n')
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := predevalOpen(uint64(i))
		if err := db.LoadCSV("loans", strings.NewReader(sb.String())); err != nil {
			b.Fatal(err)
		}
		truth := d.Truth()
		if err := db.RegisterUDF("f", func(v any) bool { return truth(int(v.(int64))) }, 3); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rows, err := db.Query(`SELECT id FROM loans WHERE f(id) = 1
			WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`)
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() == 0 {
			b.Fatal("empty result")
		}
	}
}

// predevalOpen avoids importing the root package under two names in this
// external test package.
func predevalOpen(seed uint64) *predeval.DB { return predeval.Open(seed) }

// BenchmarkTwoPredicateExtension measures the §5 conjunction study.
func BenchmarkTwoPredicateExtension(b *testing.B) { runExperiment(b, "ext-twopred", 2) }

// ------------------------------------------------ parallel UDF evaluation

// slowUDFDelay simulates a genuinely expensive predicate (a remote scoring
// service, a human task queue): ~100µs per invocation, I/O-shaped so
// worker oversubscription pays off even on small machines.
const slowUDFDelay = 100 * time.Microsecond

// benchSlowDB builds a fresh DB over the loans fixture with a slow UDF at
// the requested parallelism. A fresh DB per call keeps the cross-query
// cache cold so every run pays full evaluation cost.
func benchSlowDB(b *testing.B, n int, parallelism int) *predeval.DB {
	b.Helper()
	csv, truth := loansCSV(n, 1)
	db := predeval.Open(42)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterUDF("slow", func(v any) bool {
		time.Sleep(slowUDFDelay)
		return truth[v.(int64)]
	}, 3); err != nil {
		b.Fatal(err)
	}
	db.SetParallelism(parallelism)
	return db
}

// BenchmarkParallelExact measures an exact scan (one slow-UDF call per
// row) across parallelism levels; ns/op should drop near-linearly from
// parallelism 1 to 8.
func BenchmarkParallelExact(b *testing.B) {
	const n = 1200
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchSlowDB(b, n, p)
				b.StartTimer()
				rows, err := db.Query(`SELECT id FROM loans WHERE slow(id) = 1`)
				if err != nil {
					b.Fatal(err)
				}
				if rows.Stats().Evaluations != n {
					b.Fatalf("evaluated %d, want %d", rows.Stats().Evaluations, n)
				}
			}
			b.ReportMetric(float64(n), "udfcalls/op")
		})
	}
}

// BenchmarkParallelApprox measures the full approximate pipeline (label →
// sample → plan → execute) with the slow UDF across parallelism levels.
// Planning is sequential, so speedup tracks the evaluated fraction.
func BenchmarkParallelApprox(b *testing.B) {
	const n = 3000
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchSlowDB(b, n, p)
				b.StartTimer()
				rows, err := db.Query(`SELECT id FROM loans WHERE slow(id) = 1
					WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`)
				if err != nil {
					b.Fatal(err)
				}
				if rows.Len() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// ------------------------------------------------------------ streaming

// BenchmarkStreamFirstRow measures time-to-first-row under the batch
// streaming executor: the emit callback returns ErrStopStream on the
// first batch, so ns/op approximates the latency a predsqld
// "stream":true client waits before its first NDJSON line. With the
// slow UDF (~100µs/call) and batch size 64, the first batch costs ~64
// evaluations instead of the full scan BenchmarkParallelExact pays
// before returning anything. A fresh DB per iteration keeps the
// verdict cache cold.
func BenchmarkStreamFirstRow(b *testing.B) {
	const n = 2000
	const sql = `SELECT id FROM loans WHERE slow(id) = 1`
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := benchSlowDB(b, n, 4)
		db.SetBatchSize(64)
		b.StartTimer()
		got := 0
		res, err := db.QueryStream(context.Background(), sql, predeval.StreamOptions{},
			func(ids []int, _ [][]string) error {
				got += len(ids)
				return predeval.ErrStopStream
			})
		if err != nil {
			b.Fatal(err)
		}
		if got == 0 || res.RowCount != got {
			b.Fatalf("streamed %d rows, result says %d", got, res.RowCount)
		}
	}
}

// ------------------------------------------------------ durable catalog

// BenchmarkCatalogWarmRestart measures the durability subsystem's payoff:
// after a "restart" (fresh DB, same catalog directory) the repeated
// workload — one exact and one approximate query — runs against persisted
// verdicts and statistics. evaluations/op reports the UDF invocations the
// warm runs paid; with the catalog in place it is zero.
func BenchmarkCatalogWarmRestart(b *testing.B) {
	const n = 3000
	rng := stats.NewRNG(11)
	var sb strings.Builder
	sb.WriteString("id,grade\n")
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	sels := []float64{0.9, 0.5, 0.1}
	for i := 0; i < n; i++ {
		truth[int64(i)] = rng.Bernoulli(sels[i%3])
		fmt.Fprintf(&sb, "%d,%s\n", i, grades[i%3])
	}
	csv := sb.String()
	openDB := func(dir string) *predeval.DB {
		db := predeval.Open(1)
		if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
			b.Fatal(err)
		}
		if err := db.RegisterUDF("good_credit", func(v any) bool { return truth[v.(int64)] }, 0); err != nil {
			b.Fatal(err)
		}
		if err := db.OpenCatalog(dir); err != nil {
			b.Fatal(err)
		}
		return db
	}
	const (
		exactSQL  = "SELECT id FROM loans WHERE good_credit(id) = 1"
		approxSQL = "SELECT id FROM loans WHERE good_credit(id) = 1 WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8"
	)
	workload := func(db *predeval.DB) int {
		evals := 0
		for _, sql := range []string{exactSQL, approxSQL} {
			rows, err := db.Query(sql)
			if err != nil {
				b.Fatal(err)
			}
			evals += rows.Stats().Evaluations
		}
		return evals
	}

	dir := b.TempDir()
	cold := openDB(dir) // pay the workload once, durably
	workload(cold)
	if err := cold.CloseCatalog(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	warmEvals := 0
	for i := 0; i < b.N; i++ {
		db := openDB(dir)
		warmEvals += workload(db)
		if err := db.CloseCatalog(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(warmEvals)/float64(b.N), "evaluations/op")
}

// --------------------------------------------------------- observability

// benchFastDB is benchSlowDB with an instant UDF: the query spends its
// time in the engine itself, so per-operator instrumentation overhead is
// maximally visible instead of drowned in UDF latency.
func benchFastDB(b *testing.B, n int) *predeval.DB {
	b.Helper()
	csv, truth := loansCSV(n, 1)
	db := predeval.Open(42)
	db.SetUDFCache(false)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterUDF("fast", func(v any) bool { return truth[v.(int64)] }, 3); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkObsOverhead measures what observability costs on the hot path.
// baseline: plain execution — spans are nil-trace no-ops and no actuals
// are snapshotted. analyze: the same query under EXPLAIN ANALYZE
// (per-operator count snapshots + wall times). trace: plain execution
// with a live span recorder attached. baseline must stay within a few
// percent of the pre-instrumentation engine; the bench gate diffs it
// across revisions.
func BenchmarkObsOverhead(b *testing.B) {
	const n = 2000
	const sql = `SELECT id FROM loans WHERE fast(id) = 1`
	cases := []struct {
		name  string
		opts  predeval.QueryOptions
		trace bool
	}{
		{name: "baseline"},
		{name: "analyze", opts: predeval.QueryOptions{Analyze: true}},
		{name: "trace", trace: true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := benchFastDB(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := context.Background()
				if c.trace {
					ctx = obs.WithTrace(ctx, obs.NewTrace())
				}
				rows, err := db.QueryContextOptions(ctx, sql, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				if rows.Stats().Evaluations != n {
					b.Fatalf("evaluated %d, want %d", rows.Stats().Evaluations, n)
				}
			}
		})
	}
}
