package predeval

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// blockingDB builds a loans DB whose UDF can be switched into a blocking
// mode: while blocking is set, every call parks on the release channel
// after signaling started. Calls are counted either way.
func blockingDB(t *testing.T, n, parallelism int) (db *DB, calls *atomic.Int64, blocking *atomic.Bool, started chan struct{}, release chan struct{}) {
	t.Helper()
	csv, truth := loanCSV(n, 9)
	db = Open(1)
	db.SetParallelism(parallelism)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	calls = &atomic.Int64{}
	blocking = &atomic.Bool{}
	started = make(chan struct{}, n)
	release = make(chan struct{})
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		calls.Add(1)
		if blocking.Load() {
			started <- struct{}{}
			<-release
		}
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	return db, calls, blocking, started, release
}

// TestQueryContextCancelBlockingUDF is the acceptance-criteria test: a
// blocking UDF must not let a cancelled exact scan finish — the query
// returns ctx.Err() after at most one in-flight call per worker.
func TestQueryContextCancelBlockingUDF(t *testing.T) {
	const n, workers = 600, 4
	db, calls, blocking, started, release := blockingDB(t, n, workers)
	blocking.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, "SELECT * FROM loans WHERE good_credit(id) = 1")
		errc <- err
	}()
	<-started // at least one UDF call is in flight
	cancel()
	close(release) // let the in-flight calls drain

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	if got := calls.Load(); got > workers {
		t.Fatalf("%d UDF calls after cancel; at most one in-flight per worker (%d) allowed", got, workers)
	}

	// The engine stays reusable: the same query, un-blocked, now answers
	// exactly and correctly.
	blocking.Store(false)
	rows, err := db.Query("SELECT * FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Stats().Exact || rows.Len() == 0 {
		t.Fatalf("post-cancel rerun: exact=%v rows=%d", rows.Stats().Exact, rows.Len())
	}
}

// runCancelledApprox executes the approximate query cancelling at the
// target call count, asserts ctx.Err() came back without a full scan, then
// reruns the query to completion on the same DB and sanity-checks it.
func runCancelledApprox(t *testing.T, sql string, n int, target int64) {
	t.Helper()
	csv, truth := loanCSV(n, 9)
	db := Open(1)
	db.SetParallelism(1)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		if calls.Add(1) == target {
			cancel()
		}
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}

	_, err := db.QueryContext(ctx, sql)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	atCancel := calls.Load()
	if atCancel >= int64(n) {
		t.Fatalf("cancel at call %d did not prevent a full scan of %d rows", atCancel, n)
	}
	// At parallelism 1 the worker stops before the next item: the counter
	// must sit exactly at the triggering call.
	if atCancel != target {
		t.Fatalf("ran %d calls, cancel landed at %d", atCancel, target)
	}

	// Same DB, same query, live context: completes and answers correctly.
	rows, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("post-cancel rerun returned no rows")
	}
	correct, total := 0, 0
	for _, v := range truth {
		if v {
			total++
		}
	}
	for _, id := range rows.RowIDs() {
		if truth[int64(id)] {
			correct++
		}
	}
	if prec := float64(correct) / float64(rows.Len()); prec < 0.6 {
		t.Fatalf("post-cancel rerun precision %v", prec)
	}
	if rec := float64(correct) / float64(total); rec < 0.6 {
		t.Fatalf("post-cancel rerun recall %v", rec)
	}
}

func TestQueryContextCancelDuringLabeling(t *testing.T) {
	// No GROUP ON: the first UDF calls label ~1% of rows to discover the
	// correlated column; call 3 is mid-labeling (30 calls at n=3000).
	runCancelledApprox(t,
		`SELECT * FROM loans WHERE good_credit(id) = 1
		 WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8`, 3000, 3)
}

func TestQueryContextCancelDuringSampling(t *testing.T) {
	// GROUP ON skips labeling: the first UDF calls are the sampler's
	// two-third-power top-up, so call 3 is mid-sampling.
	runCancelledApprox(t,
		`SELECT * FROM loans WHERE good_credit(id) = 1
		 WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`, 3000, 3)
}

func TestQueryContextCancelDuringExecution(t *testing.T) {
	// Learn the sampling size from an uncancelled run with the same seed,
	// then cancel a few calls past it — inside the execution phase.
	csv, truth := loanCSV(3000, 9)
	ref := Open(1)
	ref.SetParallelism(1)
	if err := ref.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := ref.RegisterUDF("good_credit", func(v any) bool {
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT * FROM loans WHERE good_credit(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`
	rows, err := ref.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	if st.Sampled <= 0 || st.Evaluations <= st.Sampled {
		t.Fatalf("reference run stats unusable: %+v", st)
	}
	runCancelledApprox(t, sql, 3000, int64(st.Sampled)+3)
}

func TestQueryContextDeadline(t *testing.T) {
	// A UDF far slower than the deadline: the scan cannot finish in time
	// and the query surfaces context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	csv, _ := loanCSV(600, 9)
	db := Open(1)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		time.Sleep(2 * time.Millisecond)
		return true
	}, 3); err != nil {
		t.Fatal(err)
	}
	_, err := db.QueryContext(ctx, "SELECT * FROM loans WHERE good_credit(id) = 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryContextCancelSelectJoin(t *testing.T) {
	csv, truth := loanCSV(900, 9)
	db := Open(1)
	db.SetParallelism(1)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	// Join table referencing a spread of ids so subgroups form.
	var sb strings.Builder
	sb.WriteString("loan_id\n")
	for i := 0; i < 900; i++ {
		fmt.Fprintf(&sb, "%d\n", (i*7)%900)
	}
	if err := db.LoadCSV("orders", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		if calls.Add(1) == 2 {
			cancel()
		}
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	_, err := db.QueryContext(ctx, `SELECT * FROM loans JOIN orders ON loans.id = orders.loan_id
		WHERE good_credit(id) = 1 WITH PRECISION 0.7 RECALL 0.7 PROBABILITY 0.8 GROUP ON grade`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if calls.Load() >= 900 {
		t.Fatal("join query scanned everything despite cancel")
	}
}
