package predeval

import (
	"fmt"
	"strings"
	"testing"
)

// explainDB is openLoanDB plus the extra UDFs and join table the EXPLAIN
// goldens reference.
func explainDB(t *testing.T) *DB {
	t.Helper()
	db, _ := openLoanDB(t, 600)
	if err := db.RegisterUDF("rich", func(v any) bool { return v.(float64) > 70000 }, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("div3", func(v any) bool { return v.(int64)%3 == 0 }, 0); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("loan_id,amt\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i%50, i)
	}
	if err := db.LoadCSV("orders", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainGolden pins the EXPLAIN text of every query shape the planner
// covers. These strings are the public contract of DB.Explain (and of
// predsqld's "explain" flag) — update them deliberately.
func TestExplainGolden(t *testing.T) {
	db := explainDB(t)
	cases := []struct {
		name string
		sql  string
		want []string
	}{
		{"exact select", "SELECT * FROM loans WHERE good_credit(id) = 1", []string{
			`exact-eval predicate=good_credit(id)=1  (rows≈600, cost≈2400)`,
			`└─ scan table=loans  (rows≈600)`,
		}},
		{"approx pinned with filter",
			"SELECT * FROM loans WHERE grade = 'A' AND good_credit(id) = 1 WITH PRECISION 0.9 RECALL 0.85 PROBABILITY 0.9 GROUP ON grade", []string{
				`merge output=«row ids, ascending»`,
				`└─ prob-eval strategy=«per-group retrieve/evaluate coins»  (rows≈600, cost≤1760)`,
				`   └─ solve[constrained] objective=«min cost s.t. α=0.9 β=0.85 ρ=0.9»`,
				`      └─ sample allocator=«two-third-power num=2.25»  (rows≈160, cost≈640)`,
				`         └─ group-resolve[pinned] column=grade  (rows≈600)`,
				`            └─ filter predicates=«grade = "A"»  (rows≈600)`,
				`               └─ scan table=loans  (rows≈600)`,
			}},
		{"approx discover", "SELECT * FROM loans WHERE good_credit(id) = 1 WITH RECALL 0.8", []string{
			`merge output=«row ids, ascending»`,
			`└─ prob-eval strategy=«per-group retrieve/evaluate coins»  (rows≈600, cost≤1760)`,
			`   └─ solve[constrained] objective=«min cost s.t. α=0.9 β=0.8 ρ=0.9»`,
			`      └─ sample allocator=«two-third-power num=2.25»  (rows≈160, cost≈640)`,
			`         └─ group-resolve[auto] column=«discovered at runtime (§4.4 column scan)» labeling=«≈6 rows»  (rows≈600, cost≈24)`,
			`            └─ scan table=loans  (rows≈600)`,
		}},
		{"budget", "SELECT * FROM loans WHERE good_credit(id) = 1 WITH RECALL 0.8 BUDGET 900 GROUP ON grade", []string{
			`merge output=«row ids, ascending»`,
			`└─ prob-eval strategy=«per-group retrieve/evaluate coins»  (rows≈600, cost≤1760)`,
			`   └─ solve[budget] objective=«max recall s.t. α=0.9 ρ=0.9 cost≤900»`,
			`      └─ sample allocator=«two-third-power num=2.25»  (rows≈160, cost≈640)`,
			`         └─ group-resolve[pinned] column=grade  (rows≈600)`,
			`            └─ scan table=loans  (rows≈600)`,
		}},
		{"two-pred conjunction",
			"SELECT * FROM loans WHERE good_credit(id) = 1 AND rich(income) = 1 WITH PRECISION 0.8 GROUP ON grade", []string{
				`merge output=«row ids, ascending»`,
				`└─ conj-exec  (rows≈600, cost≤3206)`,
				`   └─ conj-solve[two-pred] actions=«discard | assume-both | eval-f1 | eval-f2 | eval-both (§5)»`,
				`      └─ conj-sample[two-pred] fused=«all 2 predicates per sampled row»  (rows≈142, cost≈994)`,
				`         └─ group-resolve[pinned] column=grade  (rows≈600)`,
				`            └─ scan table=loans  (rows≈600)`,
			}},
		{"n-ary conjunction",
			"SELECT * FROM loans WHERE good_credit(id) = 1 AND rich(income) = 1 AND div3(id) = 1 WITH PRECISION 0.8", []string{
				`merge output=«row ids, ascending»`,
				`└─ conj-waves[greedy] order=«cheapest-first by sampled cost/(1−selectivity)» short-circuit=«each wave evaluates only prior survivors»  (rows≈600, cost≤4580)`,
				`   └─ conj-sample fused=«all 3 predicates per sampled row»  (rows≈142, cost≈1420)`,
				`      └─ scan table=loans  (rows≈600)`,
			}},
		{"exact conjunction", "SELECT * FROM loans WHERE good_credit(id) = 1 AND rich(income) = 1", []string{
			`conj-waves[query-order] order=«good_credit(id)=1 AND rich(income)=1» short-circuit=«each wave evaluates only prior survivors»  (rows≈600, cost≤4200)`,
			`└─ scan table=loans  (rows≈600)`,
		}},
		{"select-join",
			"SELECT * FROM loans JOIN orders ON loans.id = orders.loan_id WHERE good_credit(id) = 1 WITH RECALL 0.8 GROUP ON grade", []string{
				`merge output=«row ids, ascending»`,
				`└─ prob-eval strategy=«per-subgroup retrieve/evaluate coins»  (rows≈600, cost≤1760)`,
				`   └─ solve[join-weight] objective=«min cost s.t. join-weighted α=0.9 β=0.8 ρ=0.9»`,
				`      └─ sample allocator=«two-third-power num=2.25»  (rows≈160, cost≈640)`,
				`         └─ join-group weights=«join multiplicity of id in orders.loan_id (100 rows)»  (rows≈600)`,
				`            └─ group-resolve[pinned] column=grade  (rows≈600)`,
				`               └─ scan table=loans  (rows≈600)`,
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := db.Explain(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
			if len(lines) != len(tc.want) {
				t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(tc.want), got)
			}
			for i := range lines {
				if lines[i] != tc.want[i] {
					t.Errorf("line %d:\n got %q\nwant %q", i, lines[i], tc.want[i])
				}
			}
			// The EXPLAIN keyword routes through Query as plan rows.
			rows, err := db.Query("EXPLAIN " + tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if cols := rows.Columns(); len(cols) != 1 || cols[0] != "plan" {
				t.Fatalf("explain columns %v", cols)
			}
			if rows.Len() != len(tc.want) {
				t.Fatalf("explain rows %d, want %d", rows.Len(), len(tc.want))
			}
			for i := 0; i < rows.Len(); i++ {
				if rows.Row(i)[0] != tc.want[i] {
					t.Fatalf("explain row %d = %q, want %q", i, rows.Row(i)[0], tc.want[i])
				}
			}
		})
	}
}

// TestExplainDoesNotExecute: planning must not invoke the UDF.
func TestExplainDoesNotExecute(t *testing.T) {
	db, _ := openLoanDB(t, 120)
	calls := 0
	if err := db.RegisterUDF("counted", func(v any) bool { calls++; return true }, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explain("SELECT * FROM loans WHERE counted(id) = 1 WITH RECALL 0.8"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("EXPLAIN SELECT * FROM loans WHERE counted(id) = 1"); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("EXPLAIN invoked the UDF %d times", calls)
	}
	if _, err := db.Explain("SELECT * FROM loans WHERE missing(id) = 1"); err == nil {
		t.Fatal("EXPLAIN of unknown UDF accepted")
	}
}

// TestQueryNaryConjunctionSQL: a 3-UDF conjunction parses, plans and
// executes end-to-end through the SQL layer, short-circuiting below the
// all-predicates-on-all-rows bound.
func TestQueryNaryConjunctionSQL(t *testing.T) {
	db, truth := openLoanDB(t, 1500)
	if err := db.RegisterUDF("div3", func(v any) bool { return v.(int64)%3 == 0 }, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("div5", func(v any) bool { return v.(int64)%5 == 0 }, 0); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT id FROM loans
		WHERE good_credit(id) = 1 AND div3(id) = 1 AND div5(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 GROUP ON grade`)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < 1500; i++ {
		if truth[int64(i)] && i%15 == 0 {
			want = append(want, i)
		}
	}
	got := rows.RowIDs()
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if evals := rows.Stats().Evaluations; evals >= 3*1500 {
		t.Fatalf("no short-circuit saving: %d evaluations (all-on-all = %d)", evals, 3*1500)
	}
}

func TestTableInfo(t *testing.T) {
	db, _ := openLoanDB(t, 60)
	info, err := db.TableInfo("loans")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "loans" || info.Rows != 60 {
		t.Fatalf("info %+v", info)
	}
	want := []ColumnInfo{{"id", "int"}, {"grade", "string"}, {"income", "float"}}
	if len(info.Columns) != len(want) {
		t.Fatalf("columns %+v", info.Columns)
	}
	for i, w := range want {
		if info.Columns[i] != w {
			t.Fatalf("column %d = %+v, want %+v", i, info.Columns[i], w)
		}
	}
	if _, err := db.TableInfo("missing"); err == nil {
		t.Fatal("unknown table accepted")
	}
}
