package predeval

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// openCatalogDB is openLoanDB with a counting UDF body and an attached
// catalog in dir, simulating one process life over durable state.
func openCatalogDB(t *testing.T, n int, dir string) (*DB, *atomic.Int64) {
	t.Helper()
	csv, truth := loanCSV(n, 9)
	db := Open(1)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	calls := new(atomic.Int64)
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		calls.Add(1)
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	if err := db.OpenCatalog(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.CloseCatalog() })
	return db, calls
}

const (
	exactSQL  = "SELECT id, grade FROM loans WHERE good_credit(id) = 1"
	approxSQL = "SELECT id FROM loans WHERE good_credit(id) = 1 WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8"
)

// TestCatalogRestartRoundTrip is the acceptance test for the durable
// catalog: load tables, run a workload, flush, reopen the catalog in a
// fresh DB, re-run the same workload — the exact query returns identical
// rows with Stats.Evaluations == 0, and the approximate query's Sampled
// strictly shrinks (labeling pass and top-ups are skipped).
func TestCatalogRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	db1, calls1 := openCatalogDB(t, 900, dir)
	exact1, err := db1.Query(exactSQL)
	if err != nil {
		t.Fatal(err)
	}
	approx1, err := db1.Query(approxSQL)
	if err != nil {
		t.Fatal(err)
	}
	if calls1.Load() != 900 {
		t.Fatalf("cold run invoked the UDF %d times, want 900", calls1.Load())
	}
	if approx1.Stats().Sampled == 0 {
		t.Fatal("cold approximate query sampled nothing")
	}
	if err := db1.CloseCatalog(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh DB over the same data, same catalog directory.
	db2, calls2 := openCatalogDB(t, 900, dir)
	exact2, err := db2.Query(exactSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact1.RowIDs(), exact2.RowIDs()) {
		t.Fatalf("restart changed the exact answer: %d vs %d rows", exact1.Len(), exact2.Len())
	}
	if st := exact2.Stats(); st.Evaluations != 0 {
		t.Fatalf("fully cached exact query paid %d evaluations, want 0", st.Evaluations)
	}
	approx2, err := db2.Query(approxSQL)
	if err != nil {
		t.Fatal(err)
	}
	st := approx2.Stats()
	if st.Evaluations != 0 {
		t.Fatalf("warm approximate query paid %d evaluations, want 0", st.Evaluations)
	}
	if st.Sampled >= approx1.Stats().Sampled {
		t.Fatalf("warm Sampled %d not strictly below cold %d", st.Sampled, approx1.Stats().Sampled)
	}
	if calls2.Load() != 0 {
		t.Fatalf("restart invoked the UDF body %d times, want 0", calls2.Load())
	}
	cc := db2.CacheCounters()
	if cc.Hits == 0 || cc.ColumnMemoHits != 1 || cc.SeededRows == 0 {
		t.Fatalf("warm-start counters off: %+v", cc)
	}
}

// TestCatalogCorruptTailRecovered: a crash-torn log tail is detected on
// open and recovered past — the surviving prefix still warm-starts the
// workload, and no wrong verdict is ever served.
func TestCatalogCorruptTailRecovered(t *testing.T) {
	dir := t.TempDir()
	db1, _ := openCatalogDB(t, 300, dir)
	// Two flushes produce two log records: the approximate query's paid
	// verdicts first, then the exact scan's remainder. Tearing the tail
	// must lose only the second.
	if _, err := db1.Query(approxSQL); err != nil {
		t.Fatal(err)
	}
	if err := db1.FlushCatalog(); err != nil {
		t.Fatal(err)
	}
	exact1, err := db1.Query(exactSQL)
	if err != nil {
		t.Fatal(err)
	}
	if err := db1.FlushCatalog(); err != nil {
		t.Fatal(err)
	}
	// Tear the log mid-record, as a crash during append would.
	logPath := filepath.Join(dir, "catalog.log")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2, calls2 := openCatalogDB(t, 300, dir)
	rec := db2.Catalog().Recovery()
	if !rec.Truncated || rec.Note == "" {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	exact2, err := db2.Query(exactSQL)
	if err != nil {
		t.Fatal(err)
	}
	// Verdicts lost with the tail are re-paid, never guessed: the answer
	// matches the cold run exactly and the body ran only for lost rows.
	if !reflect.DeepEqual(exact1.RowIDs(), exact2.RowIDs()) {
		t.Fatal("recovery changed the exact answer")
	}
	if n := calls2.Load(); n == 0 || n >= 300 {
		t.Fatalf("recovered run re-paid %d invocations, want a small non-zero count", n)
	}
}

// TestCatalogStatsCacheCounters: the satellite observability contract —
// per-query Stats now expose cross-query cache hits/misses through the
// facade, with or without a catalog.
func TestCatalogStatsCacheCounters(t *testing.T) {
	db, _ := openLoanDB(t, 300)
	r1, err := db.Query(exactSQL)
	if err != nil {
		t.Fatal(err)
	}
	if st := r1.Stats(); st.CacheHits != 0 || st.CacheMisses != 300 {
		t.Fatalf("cold stats hits=%d misses=%d, want 0/300", st.CacheHits, st.CacheMisses)
	}
	r2, err := db.Query(exactSQL)
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.CacheHits != 300 || st.CacheMisses != 0 {
		t.Fatalf("repeat stats hits=%d misses=%d, want 300/0", st.CacheHits, st.CacheMisses)
	}
	if cc := db.CacheCounters(); cc.Hits != 300 || cc.Misses != 300 {
		t.Fatalf("lifetime counters %+v, want 300 hits / 300 misses", cc)
	}
}
