// Tests for the parallel UDF-evaluation subsystem as seen through the
// public facade: bit-for-bit determinism across parallelism levels, safety
// of concurrent queries against one shared DB (exercised under -race in
// CI), and the cross-query UDF outcome cache.
package predeval_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	predeval "repro"
	"repro/internal/stats"
)

// loansCSV synthesizes a loans table whose hidden label correlates with
// grade (A: 90%, B: 50%, C: 10%), the repo's standard fixture shape.
func loansCSV(n int, seed uint64) (string, map[int64]bool) {
	rng := stats.NewRNG(seed)
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	sels := []float64{0.9, 0.5, 0.1}
	var sb strings.Builder
	sb.WriteString("id,grade,income\n")
	for i := 0; i < n; i++ {
		g := i % 3
		label := rng.Bernoulli(sels[g])
		truth[int64(i)] = label
		fmt.Fprintf(&sb, "%d,%s,%.2f\n", i, grades[g], 30000+rng.Float64()*90000)
	}
	return sb.String(), truth
}

// openLoansDB builds a DB over the fixture with two registered UDFs whose
// bodies are pure map reads (safe for concurrent invocation).
func openLoansDB(t testing.TB, n int, seed uint64) *predeval.DB {
	t.Helper()
	csv, truth := loansCSV(n, 1)
	db := predeval.Open(seed)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("is_even", func(v any) bool {
		return v.(int64)%2 == 0
	}, 3); err != nil {
		t.Fatal(err)
	}
	return db
}

// snapshot flattens a result for deep comparison.
type snapshot struct {
	Cols  []string
	Cells [][]string
	IDs   []int
	Stats predeval.Stats
}

func snap(r *predeval.Rows) snapshot {
	s := snapshot{Cols: r.Columns(), IDs: r.RowIDs(), Stats: r.Stats()}
	for i := 0; i < r.Len(); i++ {
		s.Cells = append(s.Cells, r.Row(i))
	}
	return s
}

// TestDeterministicAcrossParallelism is the subsystem's core contract:
// same seed ⇒ identical rows AND identical cost accounting whether the
// UDF fan-out uses 1 worker or 8, for every query class.
func TestDeterministicAcrossParallelism(t *testing.T) {
	queries := map[string]string{
		"exact": `SELECT id, grade FROM loans WHERE good_credit(id) = 1`,
		"approx": `SELECT id FROM loans WHERE good_credit(id) = 1
			WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`,
		"discover": `SELECT id FROM loans WHERE good_credit(id) = 1
			WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8`,
		"budget": `SELECT id FROM loans WHERE good_credit(id) = 1
			WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade BUDGET 4000`,
		"twopred": `SELECT id FROM loans WHERE good_credit(id) = 1 AND is_even(id) = 1
			WITH PRECISION 0.75 RECALL 0.75 PROBABILITY 0.8 GROUP ON grade`,
		"filtered": `SELECT id FROM loans WHERE good_credit(id) = 1 AND grade = 'A'`,
	}
	for name, sql := range queries {
		t.Run(name, func(t *testing.T) {
			run := func(parallelism int) snapshot {
				db := openLoansDB(t, 3000, 42)
				db.SetParallelism(parallelism)
				rows, err := db.Query(sql)
				if err != nil {
					t.Fatal(err)
				}
				return snap(rows)
			}
			seq := run(1)
			for _, p := range []int{2, 8} {
				if par := run(p); !reflect.DeepEqual(seq, par) {
					t.Fatalf("parallelism %d diverged from sequential:\nseq stats %+v (%d rows)\npar stats %+v (%d rows)",
						p, seq.Stats, len(seq.Cells), par.Stats, len(par.Cells))
				}
			}
			if seq.Stats.Evaluations == 0 {
				t.Fatal("query did no UDF work; test is vacuous")
			}
		})
	}
}

// TestConcurrentQueriesSharedDB hammers one DB from many goroutines with a
// mix of exact and approximate queries. Run under -race this exercises the
// meter single-flight, the shared eval cache, the fault collector, and the
// engine's RNG splitting.
func TestConcurrentQueriesSharedDB(t *testing.T) {
	db := openLoansDB(t, 1500, 7)
	db.SetParallelism(4)
	want, err := db.Query(`SELECT id FROM loans WHERE good_credit(id) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	sqls := []string{
		`SELECT id FROM loans WHERE good_credit(id) = 1`,
		`SELECT id, grade FROM loans WHERE good_credit(id) = 1 AND grade = 'B'`,
		`SELECT id FROM loans WHERE good_credit(id) = 1
			WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`,
		`SELECT id FROM loans WHERE good_credit(id) = 1 AND is_even(id) = 1
			WITH PRECISION 0.75 RECALL 0.75 PROBABILITY 0.8 GROUP ON grade`,
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(sqls))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k, sql := range sqls {
				rows, err := db.Query(sql)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, k, err)
					return
				}
				// The exact scan has one right answer regardless of what
				// ran concurrently.
				if k == 0 && !reflect.DeepEqual(rows.RowIDs(), want.RowIDs()) {
					errs <- fmt.Errorf("goroutine %d: exact scan returned %d rows, want %d",
						g, rows.Len(), want.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestUDFCacheNeverRepays verifies the engine-level memoization: a second
// query touching the same (table, UDF, column) pays zero evaluations.
func TestUDFCacheNeverRepays(t *testing.T) {
	db := openLoansDB(t, 600, 3)
	first, err := db.Query(`SELECT id FROM loans WHERE good_credit(id) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats().Evaluations != 600 {
		t.Fatalf("first scan evaluated %d, want 600", first.Stats().Evaluations)
	}
	second, err := db.Query(`SELECT id FROM loans WHERE good_credit(id) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats().Evaluations != 0 {
		t.Fatalf("second scan re-paid %d evaluations", second.Stats().Evaluations)
	}
	if !reflect.DeepEqual(first.RowIDs(), second.RowIDs()) {
		t.Fatal("cached scan returned different rows")
	}
	if got, want := second.Stats().Cost, float64(600); got != want {
		t.Fatalf("cached scan cost %v, want retrieval-only %v", got, want)
	}
	// An approximate query over the same predicate also rides the cache:
	// every row it samples or verifies was already evaluated.
	approx, err := db.Query(`SELECT id FROM loans WHERE good_credit(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade`)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Stats().Evaluations != 0 {
		t.Fatalf("approx after exact re-paid %d evaluations", approx.Stats().Evaluations)
	}

	// Disabling the cache restores pay-per-query.
	db.SetUDFCache(false)
	third, err := db.Query(`SELECT id FROM loans WHERE good_credit(id) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats().Evaluations != 600 {
		t.Fatalf("cache-off scan evaluated %d, want 600", third.Stats().Evaluations)
	}
}
