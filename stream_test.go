package predeval

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// countingLoanDB is openLoanDB with a call counter on the UDF, so tests
// can observe how much evaluation a stream actually paid for.
func countingLoanDB(t *testing.T, n int) (*DB, *atomic.Int64) {
	t.Helper()
	csv, truth := loanCSV(n, 9)
	db := Open(1)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	calls := new(atomic.Int64)
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		calls.Add(1)
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	return db, calls
}

// TestQueryStreamMatchesQuery pins that a stream delivers exactly the
// materialized result: same row ids, same rendered cells, same columns,
// same stats.
func TestQueryStreamMatchesQuery(t *testing.T) {
	const sql = "SELECT id, grade FROM loans WHERE good_credit(id) = 1"
	db, _ := openLoanDB(t, 600)
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	db2, _ := openLoanDB(t, 600)
	var ids []int
	var cells [][]string
	res, err := db2.QueryStream(context.Background(), sql, StreamOptions{},
		func(batchIDs []int, batchCells [][]string) error {
			ids = append(ids, batchIDs...)
			cells = append(cells, batchCells...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Columns, want.Columns()) {
		t.Fatalf("columns %v, want %v", res.Columns, want.Columns())
	}
	if !reflect.DeepEqual(ids, want.RowIDs()) {
		t.Fatalf("streamed %d ids, materialized %d; orders differ", len(ids), len(want.RowIDs()))
	}
	for i := range cells {
		if !reflect.DeepEqual(cells[i], want.Row(i)) {
			t.Fatalf("row %d rendered %v, materialized %v", i, cells[i], want.Row(i))
		}
	}
	if res.RowCount != want.Len() || res.Truncated {
		t.Fatalf("RowCount=%d Truncated=%v, want %d/false", res.RowCount, res.Truncated, want.Len())
	}
	if res.Stats != want.Stats() {
		t.Fatalf("stats %+v, want %+v", res.Stats, want.Stats())
	}
}

// TestQueryStreamLimitStopsProduction is the regression test for the
// limit/stream interplay: the limit must stop producing — cancelling
// upstream evaluation — not truncate after a full evaluation. The ids
// delivered must still be the first Limit ids of the full result.
func TestQueryStreamLimitStopsProduction(t *testing.T) {
	const sql = "SELECT id FROM loans WHERE good_credit(id) = 1"
	const n, limit = 3000, 10
	full, _ := openLoanDB(t, n)
	want, err := full.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	db, calls := countingLoanDB(t, n)
	db.SetBatchSize(16)
	db.SetParallelism(1)
	var ids []int
	res, err := db.QueryStream(context.Background(), sql, StreamOptions{Limit: limit},
		func(batchIDs []int, _ [][]string) error {
			ids = append(ids, batchIDs...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.RowCount != limit || len(ids) != limit {
		t.Fatalf("Truncated=%v RowCount=%d ids=%d, want true/%d/%d",
			res.Truncated, res.RowCount, len(ids), limit, limit)
	}
	if !reflect.DeepEqual(ids, want.RowIDs()[:limit]) {
		t.Fatalf("limited ids %v are not the first %d of the full result", ids, limit)
	}
	// The point of streamed limits: unevaluated rows are never paid for.
	if c := calls.Load(); c >= n/2 {
		t.Fatalf("limit %d still evaluated %d of %d rows; production was not stopped", limit, c, n)
	}
	if res.Stats.Evaluations >= n/2 {
		t.Fatalf("Stats.Evaluations = %d, want far below the %d-row table", res.Stats.Evaluations, n)
	}
}

// TestQueryStreamStopStream pins the ErrStopStream contract: returning it
// from emit ends the stream successfully with the rows delivered so far.
func TestQueryStreamStopStream(t *testing.T) {
	db, _ := countingLoanDB(t, 600)
	db.SetBatchSize(8)
	batches := 0
	res, err := db.QueryStream(context.Background(),
		"SELECT id FROM loans WHERE good_credit(id) = 1", StreamOptions{},
		func(ids []int, _ [][]string) error {
			batches++
			return ErrStopStream
		})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("emit ran %d times after ErrStopStream, want 1", batches)
	}
	if res.RowCount == 0 || res.RowCount > 8 {
		t.Fatalf("RowCount = %d, want the first batch's rows", res.RowCount)
	}
}

// TestQueryStreamRejectsExplain pins that plan-only statements cannot be
// streamed.
func TestQueryStreamRejectsExplain(t *testing.T) {
	db, _ := openLoanDB(t, 30)
	for _, sql := range []string{
		"EXPLAIN SELECT id FROM loans WHERE good_credit(id) = 1",
		"EXPLAIN ANALYZE SELECT id FROM loans WHERE good_credit(id) = 1",
	} {
		_, err := db.QueryStream(context.Background(), sql, StreamOptions{},
			func([]int, [][]string) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "cannot be streamed") {
			t.Fatalf("%s: err = %v, want a cannot-be-streamed error", sql, err)
		}
	}
}

// TestQueryStreamApproxBlockingShape pins that blocking plan shapes
// (sampling pipelines) still stream their finished result out in batches,
// identical to the materialized path.
func TestQueryStreamApproxBlockingShape(t *testing.T) {
	const sql = "SELECT id FROM loans WHERE good_credit(id) = 1 " +
		"WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8 GROUP ON grade"
	db, _ := openLoanDB(t, 600)
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	db2, _ := openLoanDB(t, 600)
	db2.SetBatchSize(32)
	var ids []int
	res, err := db2.QueryStream(context.Background(), sql, StreamOptions{},
		func(batchIDs []int, _ [][]string) error {
			ids = append(ids, batchIDs...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, want.RowIDs()) {
		t.Fatalf("streamed %d ids, materialized %d", len(ids), len(want.RowIDs()))
	}
	if res.Stats != want.Stats() {
		t.Fatalf("stats %+v, want %+v", res.Stats, want.Stats())
	}
}
