package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// writeModule lays out a throwaway module named like this repo (the
// default targets key off the module path) and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolationFailsLint is the acceptance check from the issue:
// planting a `go` statement in internal/core must fail the lint.
func TestSeededViolationFailsLint(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/bad.go": `package core

func leak(ch chan int) {
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[gospawn]") {
		t.Errorf("stdout does not report the gospawn finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "predlint: 1 findings") {
		t.Errorf("stderr summary missing:\n%s", stderr.String())
	}
}

// TestDirectiveSuppressesSeededViolation: the same violation under a
// well-formed //predlint:allow passes, and the summary counts it.
func TestDirectiveSuppressesSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/allowed.go": `package core

func leak(ch chan int) {
	//predlint:allow gospawn — exercising suppression in a driver test
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "1 suppressed by 1 directives") {
		t.Errorf("stderr summary does not count the suppression:\n%s", stderr.String())
	}
}

// TestReasonlessDirectiveStillFails: a directive without a reason is
// itself a finding, so it cannot be used to sneak a violation through.
func TestReasonlessDirectiveStillFails(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/sneaky.go": `package core

func leak(ch chan int) {
	//predlint:allow gospawn
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "without a reason") {
		t.Errorf("stdout does not report the reasonless directive:\n%s", stdout.String())
	}
}

// TestJSONOutput: -json emits a parseable lint.Result on stdout.
func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/bad.go": `package core

func leak(ch chan int) {
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var res lint.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if len(res.Findings) != 1 || res.Findings[0].Analyzer != "gospawn" {
		t.Errorf("findings = %+v, want one gospawn finding", res.Findings)
	}
	if res.Findings[0].File != filepath.Join("internal", "core", "bad.go") {
		t.Errorf("finding file = %q, want module-relative path", res.Findings[0].File)
	}
	if len(res.Analyzers) != 6 {
		t.Errorf("analyzers = %v, want the 6-analyzer suite", res.Analyzers)
	}
}

// TestListFlag: -list describes the suite without loading packages.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"atomicwrite", "ctxflow", "detrand", "errtaxonomy", "gospawn", "maporder"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRepositoryIsClean runs the real suite over the real tree — the same
// invocation CI blocks on. Skipped under -short (it type-checks the whole
// module).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is not a short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("predlint over the repository exits %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "predlint: 0 findings") {
		t.Errorf("summary does not report a clean tree:\n%s", stderr.String())
	}
}
