package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// writeModule lays out a throwaway module named like this repo (the
// default targets key off the module path) and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolationFailsLint is the acceptance check from the issue:
// planting a `go` statement in internal/core must fail the lint.
func TestSeededViolationFailsLint(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/bad.go": `package core

func leak(ch chan int) {
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[gospawn]") {
		t.Errorf("stdout does not report the gospawn finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "predlint: 1 findings") {
		t.Errorf("stderr summary missing:\n%s", stderr.String())
	}
}

// TestDirectiveSuppressesSeededViolation: the same violation under a
// well-formed //predlint:allow passes, and the summary counts it.
func TestDirectiveSuppressesSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/allowed.go": `package core

func leak(ch chan int) {
	//predlint:allow gospawn — exercising suppression in a driver test
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "1 suppressed by 1 directives") {
		t.Errorf("stderr summary does not count the suppression:\n%s", stderr.String())
	}
}

// TestReasonlessDirectiveStillFails: a directive without a reason is
// itself a finding, so it cannot be used to sneak a violation through.
func TestReasonlessDirectiveStillFails(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/sneaky.go": `package core

func leak(ch chan int) {
	//predlint:allow gospawn
	go func() { ch <- 1 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "without a reason") {
		t.Errorf("stdout does not report the reasonless directive:\n%s", stdout.String())
	}
}

// TestJSONOutput: -json emits a parseable lint.Result on stdout, including
// the per-directive use counts.
func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/bad.go": `package core

func leak(ch chan int) {
	go func() { ch <- 1 }()
}
`,
		"internal/core/allowed.go": `package core

func covered(ch chan int) {
	//predlint:allow gospawn — exercising the directive_uses JSON field
	go func() { ch <- 2 }()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var res lint.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if len(res.Findings) != 1 || res.Findings[0].Analyzer != "gospawn" {
		t.Errorf("findings = %+v, want one gospawn finding", res.Findings)
	}
	if res.Findings[0].File != filepath.Join("internal", "core", "bad.go") {
		t.Errorf("finding file = %q, want module-relative path", res.Findings[0].File)
	}
	if len(res.Analyzers) != 10 {
		t.Errorf("analyzers = %v, want the 10-analyzer suite", res.Analyzers)
	}
	if res.Suppressed != 1 || res.Directives != 1 {
		t.Errorf("suppressed/directives = %d/%d, want 1/1", res.Suppressed, res.Directives)
	}
	if len(res.DirectiveUses) != 1 {
		t.Fatalf("directive_uses = %+v, want one entry", res.DirectiveUses)
	}
	u := res.DirectiveUses[0]
	if u.File != filepath.Join("internal", "core", "allowed.go") || u.Uses != 1 ||
		len(u.Analyzers) != 1 || u.Analyzers[0] != "gospawn" || u.Reason == "" {
		t.Errorf("directive_uses[0] = %+v, want the gospawn directive with 1 use and its reason", u)
	}
}

// TestOnlySkipFilters: -only restricts the suite, -skip carves from it,
// and an unknown name in either is a usage error (exit 2).
func TestOnlySkipFilters(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/bad.go": `package core

func leak(ch chan int) {
	go func() { ch <- 1 }()
}
`,
	})
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"only the violated analyzer", []string{"-only", "gospawn"}, 1},
		{"only an unrelated analyzer", []string{"-only", "detrand"}, 0},
		{"skip the violated analyzer", []string{"-skip", "gospawn"}, 0},
		{"skip an unrelated analyzer", []string{"-skip", "detrand"}, 1},
		{"only with a list", []string{"-only", "detrand,gospawn"}, 1},
		{"unknown only name", []string{"-only", "nosuchcheck"}, 2},
		{"unknown skip name", []string{"-skip", "nosuchcheck"}, 2},
		{"everything filtered out", []string{"-only", "gospawn", "-skip", "gospawn"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := append([]string{"-C", dir}, append(c.args, "./...")...)
			if code := run(args, &stdout, &stderr); code != c.exit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, c.exit, stdout.String(), stderr.String())
			}
		})
	}
}

// TestStrictStaleDirectiveFailsRun: a directive that suppresses nothing
// passes by default but fails under -strict — unless the analyzer it
// names was filtered out of the run.
func TestStrictStaleDirectiveFailsRun(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/stale.go": `package core

//predlint:allow maporder — historical exception, nothing left to excuse
func nothing() {}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("non-strict exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-strict", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("strict exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "stale") || !strings.Contains(stdout.String(), "maporder") {
		t.Errorf("stdout does not report the stale maporder directive:\n%s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-strict", "-only", "gospawn", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("strict -only exit = %d, want 0 (maporder did not run, so its directive proves nothing)\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestSeededFlowViolationsFailLint is the acceptance check for the four
// flow-sensitive analyzers: one module seeding a violation of each
// invariant — an escaping batch slice, an unbalanced span, a mixed
// atomic/plain field, and breaker interaction inside a worker closure —
// must fail the lint with all four analyzers reporting.
func TestSeededFlowViolationsFailLint(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/engine/bad_batch.go": `package engine

import "context"

type Batch struct{ Rows []int }

type child struct{}

func (c *child) Next(ctx context.Context) (*Batch, error) { return &Batch{}, nil }

type op struct {
	child *child
	rows  []int
}

func (o *op) pull(ctx context.Context) {
	b, _ := o.child.Next(ctx)
	o.rows = b.Rows
}
`,
		"internal/engine/bad_span.go": `package engine

type Span struct{}

func (s *Span) End()                    {}
func (s *Span) SetAttr(k, v string)     {}

type Trace struct{}

func (t *Trace) Start(name string) *Span { return &Span{} }

func leakSpan(t *Trace, fail bool) bool {
	sp := t.Start("wave")
	sp.SetAttr("k", "v")
	if fail {
		return false
	}
	sp.End()
	return true
}
`,
		"internal/core/bad_atomic.go": `package core

import "sync/atomic"

type ctr struct{ n int64 }

func (c *ctr) inc() { atomic.AddInt64(&c.n, 1) }

func (c *ctr) read() int64 { return c.n }
`,
		"internal/exec/bad_fold.go": `package exec

type Pool struct{}

func (p *Pool) ForEachCtx(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type Breaker struct{}

func (b *Breaker) Plan(n int) []bool  { return make([]bool, n) }
func (b *Breaker) Record(failed bool) {}

func wave(p *Pool, b *Breaker) {
	p.ForEachCtx(4, func(i int) {
		b.Record(false)
	})
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, name := range []string{"[batchalias]", "[spanbalance]", "[atomicmix]", "[foldpoint]"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("stdout does not report a %s finding:\n%s", name, stdout.String())
		}
	}
}

// TestListFlag: -list describes the suite without loading packages.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"atomicmix", "atomicwrite", "batchalias", "ctxflow", "detrand",
		"errtaxonomy", "foldpoint", "gospawn", "maporder", "spanbalance",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRepositoryIsClean runs the real suite over the real tree — the same
// invocation CI blocks on, -strict included, so a stale directive anywhere
// in the repo fails here first. Skipped under -short (it type-checks the
// whole module).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is not a short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "-strict", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("predlint over the repository exits %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "predlint: 0 findings") {
		t.Errorf("summary does not report a clean tree:\n%s", stderr.String())
	}
}
