// Command predlint runs the engine's invariant suite (internal/lint/rules)
// over the repository: determinism (detrand, maporder, gospawn), context
// plumbing (ctxflow), the typed failure taxonomy (errtaxonomy) and atomic
// catalog writes (atomicwrite). It is a blocking CI step: any finding —
// including a malformed //predlint:allow directive — fails the run.
//
// Usage:
//
//	go run ./cmd/predlint ./...          # lint the whole module
//	go run ./cmd/predlint -json ./...    # machine-readable findings
//	go run ./cmd/predlint -list          # describe the analyzer suite
//	go run ./cmd/predlint -tests ./...   # include _test.go variants
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. A one-line
// summary (findings, suppressions, directives) always goes to stderr so
// suppression creep stays visible in CI logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("predlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings and counters as JSON on stdout")
	list := fs.Bool("list", false, "describe the analyzer suite and exit")
	tests := fs.Bool("tests", false, "also analyze _test.go variants of the matched packages")
	dir := fs.String("C", "", "run as if launched from this directory (defaults to the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := rules.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "predlint: %v\n", err)
			return 2
		}
		root = wd
	}
	loader := &lint.Loader{Dir: root, Tests: *tests}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "predlint: %v\n", err)
		return 2
	}
	base, err := filepath.Abs(root)
	if err != nil {
		base = root
	}
	res, err := lint.Run(pkgs, suite, lint.DefaultTargets(), base)
	if err != nil {
		fmt.Fprintf(stderr, "predlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(stderr, "predlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	fmt.Fprintln(stderr, res.Summary())
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}
