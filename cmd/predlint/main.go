// Command predlint runs the engine's invariant suite (internal/lint/rules)
// over the repository: determinism (detrand, maporder, gospawn), context
// plumbing (ctxflow), the typed failure taxonomy (errtaxonomy), atomic
// catalog writes (atomicwrite), and the flow-sensitive batch/observability
// checks (batchalias, spanbalance, atomicmix, foldpoint). It is a blocking
// CI step: any finding — including a malformed //predlint:allow directive —
// fails the run.
//
// Usage:
//
//	go run ./cmd/predlint ./...                  # lint the whole module
//	go run ./cmd/predlint -json ./...            # machine-readable findings
//	go run ./cmd/predlint -list                  # describe the analyzer suite
//	go run ./cmd/predlint -tests ./...           # include _test.go variants
//	go run ./cmd/predlint -only spanbalance ./...  # run a subset
//	go run ./cmd/predlint -skip ctxflow ./...    # run all but a subset
//	go run ./cmd/predlint -strict ./...          # stale directives are findings
//
// -only and -skip take comma-separated analyzer names; naming an unknown
// analyzer is a usage error. Under a filtered suite, directives naming
// analyzers that did not run are neither unknown nor stale.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. A one-line
// summary (findings, suppressions, directives) always goes to stderr so
// suppression creep stays visible in CI logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("predlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings and counters as JSON on stdout")
	list := fs.Bool("list", false, "describe the analyzer suite and exit")
	tests := fs.Bool("tests", false, "also analyze _test.go variants of the matched packages")
	strict := fs.Bool("strict", false, "report never-used //predlint:allow directives as findings")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzer names to exclude")
	dir := fs.String("C", "", "run as if launched from this directory (defaults to the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	full := rules.Suite()
	suite, err := filterSuite(full, *only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "predlint: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "predlint: %v\n", err)
			return 2
		}
		root = wd
	}
	loader := &lint.Loader{Dir: root, Tests: *tests}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "predlint: %v\n", err)
		return 2
	}
	base, err := filepath.Abs(root)
	if err != nil {
		base = root
	}
	opts := lint.Options{Strict: *strict}
	for _, a := range full {
		opts.KnownAnalyzers = append(opts.KnownAnalyzers, a.Name)
	}
	res, err := lint.Run(pkgs, suite, lint.DefaultTargets(), base, opts)
	if err != nil {
		fmt.Fprintf(stderr, "predlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(stderr, "predlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	fmt.Fprintln(stderr, res.Summary())
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// filterSuite applies -only/-skip. Both take comma-separated analyzer
// names; naming an analyzer not in the suite is a usage error (a typo
// silently running everything — or nothing — is how invariants rot).
func filterSuite(suite []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, error) {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	parse := func(flagName, spec string) (map[string]bool, error) {
		if spec == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(spec, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	if onlySet == nil && skipSet == nil {
		return suite, nil
	}
	var out []*lint.Analyzer
	for _, a := range suite {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only/-skip filtered out every analyzer")
	}
	return out, nil
}
