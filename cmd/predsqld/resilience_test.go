package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/resilience"
)

// fallibleServer builds a server over a 30-row table whose UDF labels even
// ids true — except the body panics on id 13 and errors on id 17.
func fallibleServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	db := predeval.Open(1)
	var sb strings.Builder
	sb.WriteString("id,grade\n")
	for i := 0; i < 30; i++ {
		g := "A"
		if i%2 == 1 {
			g = "B"
		}
		fmt.Fprintf(&sb, "%d,%s\n", i, g)
	}
	if err := db.LoadCSV("loans", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	db.SetRetryPolicy(resilience.Policy{
		MaxAttempts: 2,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	err := db.RegisterUDFErr("good_credit", func(_ context.Context, v any) (bool, error) {
		switch id := v.(int64); id {
		case 13:
			panic("udf bug")
		case 17:
			return false, errors.New("backend down")
		default:
			return id%2 == 0, nil
		}
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(db, serverConfig{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestServerDegradedResponse(t *testing.T) {
	_, ts := fallibleServer(t)
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL:       "SELECT id FROM loans WHERE good_credit(id) = 1",
		OnFailure: "degrade",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Errorf("response not marked degraded: %s", body)
	}
	if out.Stats.FailedRows != 2 { // ids 13 and 17
		t.Errorf("failed_rows = %d, want 2", out.Stats.FailedRows)
	}
	if out.Stats.Retries < 1 { // id 17's transient error is retried once
		t.Errorf("retries = %d, want ≥ 1", out.Stats.Retries)
	}
	// ids 0,2,...,28 match; the failed ids (13, 17) are odd, so the
	// surviving row set is complete.
	if out.RowCount != 15 {
		t.Errorf("row_count = %d, want 15", out.RowCount)
	}
}

func TestServerFailPolicyReturns400(t *testing.T) {
	srv, ts := fallibleServer(t)
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL: "SELECT id FROM loans WHERE good_credit(id) = 1",
	})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 under the default fail policy: %s", status, body)
	}
	if !strings.Contains(string(body), "good_credit") {
		t.Errorf("error does not name the failing UDF: %s", body)
	}
	if srv.panics.Load() != 0 {
		t.Error("a failing query must not count as a handler panic")
	}
	// The server survives: a degrade retry of the same query succeeds.
	status, _ = mustPostQuery(t, ts.URL, queryRequest{
		SQL:       "SELECT id FROM loans WHERE good_credit(id) = 1",
		OnFailure: "degrade",
	})
	if status != http.StatusOK {
		t.Fatalf("post-failure query: status %d", status)
	}
}

func TestServerRejectsUnknownFailurePolicy(t *testing.T) {
	_, ts := fallibleServer(t)
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL:       "SELECT id FROM loans WHERE good_credit(id) = 1",
		OnFailure: "explode",
	})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "failure policy") {
		t.Fatalf("status %d body %s, want a 400 naming the bad policy", status, body)
	}
}

// TestRecoverPanicsMiddleware is the regression test for the per-request
// panic-recovery middleware: a panicking handler answers 500 JSON, the
// panic is counted, and http.ErrAbortHandler keeps its meaning.
func TestRecoverPanicsMiddleware(t *testing.T) {
	srv, _ := fallibleServer(t)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	mux.HandleFunc("GET /abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	h := srv.recoverPanics(mux)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil)) // must not propagate
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rr.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatalf("panic response %q is not JSON: %v", rr.Body.String(), err)
	}
	if !strings.Contains(er.Error, "internal error") {
		t.Errorf("error payload %q", er.Error)
	}
	if srv.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", srv.panics.Load())
	}

	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Error("ErrAbortHandler must be re-panicked, not converted to 500")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/abort", nil))
	}()
	if srv.panics.Load() != 1 {
		t.Errorf("ErrAbortHandler must not be counted: panics = %d", srv.panics.Load())
	}
}

func TestServerStatsResilienceSection(t *testing.T) {
	_, ts := fallibleServer(t)
	status, _ := mustPostQuery(t, ts.URL, queryRequest{
		SQL:       "SELECT id FROM loans WHERE good_credit(id) = 1",
		OnFailure: "degrade",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	st := getStats(t, ts.URL)
	r := st.Resilience
	if r.FailedRows != 2 || r.DegradedQueries != 1 || r.Retries < 1 {
		t.Errorf("resilience section = %+v, want the degraded query's counters", r)
	}
	if len(r.Breakers) != 1 || r.Breakers[0].UDF != "good_credit" || r.Breakers[0].State != "closed" {
		t.Errorf("breakers = %+v, want one closed good_credit breaker", r.Breakers)
	}
}

// TestServerChaosWiring drives a chaos-wrapped UDF end to end the way the
// -chaos-* flags do: injected failures outlasting the retry budget produce
// a degraded partial result, and the chaos call counter reaches /stats.
func TestServerChaosWiring(t *testing.T) {
	db := predeval.Open(1)
	var sb strings.Builder
	sb.WriteString("id\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%d\n", i)
	}
	if err := db.LoadCSV("t", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFailurePolicy("degrade"); err != nil {
		t.Fatal(err)
	}
	db.SetRetryPolicy(resilience.Policy{
		MaxAttempts: 2,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	// FailAttempts 3 > MaxAttempts 2: every row exhausts its retry budget.
	chaos := resilience.NewChaos(resilience.ChaosConfig{Seed: 3, FailAttempts: 3})
	err := db.RegisterUDFErr("p", chaos.Wrap(func(context.Context, any) (bool, error) {
		return true, nil
	}), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(db, serverConfig{})
	srv.chaos = chaos
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	status, body := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT id FROM t WHERE p(id) = 1"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.RowCount != 0 {
		t.Errorf("every row fails its whole retry budget: want an empty degraded result, got %s", body)
	}
	st := getStats(t, ts.URL)
	if st.Resilience.ChaosCalls == 0 {
		t.Error("chaos call counter missing from /stats")
	}
	if st.Resilience.FailedRows != 40 {
		t.Errorf("failed_rows = %d, want 40", st.Resilience.FailedRows)
	}
}
