package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// The /metrics surface: every counter the server already keeps (admission,
// resilience, catalog) is exposed as Prometheus text exposition via
// scrape-time collectors over the same atomics GET /stats reads, plus two
// histogram families the handlers feed directly — query latency and
// per-UDF invocation duration. Collectors read live state, so /metrics
// needs no second bookkeeping path that could drift from /stats.

// registerMetrics wires the server's state into its registry. Called once
// from newServer; collectors run at scrape time.
func (s *server) registerMetrics() {
	reg := s.metrics
	s.queryDur = reg.Histogram("predsqld_query_duration_seconds",
		"Wall time of executed queries (excludes admission waiting).", obs.DefBuckets)

	reg.Collect("predsqld_queries_total", "Queries by outcome.", "counter", func() []obs.Sample {
		status := func(name string, v int64) obs.Sample {
			return obs.Sample{Labels: []obs.Label{{Name: "status", Value: name}}, Value: float64(v)}
		}
		return []obs.Sample{
			status("ok", s.served.Load()),
			status("error", s.failed.Load()),
			status("timeout", s.timeouts.Load()),
			status("rejected", s.rejected.Load()),
			status("disconnect", s.disconnects.Load()),
		}
	})
	reg.GaugeFunc("predsqld_in_flight",
		"Queries currently executing (post-admission).",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("predsqld_admission_waiting",
		"Queries queued for an execution slot right now.",
		func() float64 { return float64(s.waiting.Load()) })
	reg.GaugeFunc("predsqld_max_concurrent",
		"Admission-control width (-max-concurrent).",
		func() float64 { return float64(s.cfg.MaxConcurrent) })

	// Batch execution observability, read live off the engine's atomics.
	reg.GaugeFunc("predsqld_batches_in_flight",
		"Result batches currently being processed downstream of the engine.",
		func() float64 {
			inFlight, _, _ := s.db.Engine().BatchCounters()
			return float64(inFlight)
		})
	reg.GaugeFunc("predsqld_peak_batch_rows",
		"Largest result batch (in rows) any query has emitted.",
		func() float64 {
			_, peak, _ := s.db.Engine().BatchCounters()
			return float64(peak)
		})
	reg.Collect("predsqld_batches_total",
		"Result batches emitted by the engine.", "counter",
		func() []obs.Sample {
			_, _, total := s.db.Engine().BatchCounters()
			return []obs.Sample{{Value: float64(total)}}
		})

	reg.Collect("predsqld_udf_retries_total",
		"UDF retry attempts summed over all queries.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.retries.Load())}} })
	reg.Collect("predsqld_failed_rows_total",
		"Rows whose UDF invocation ultimately failed, summed over all queries.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.failedRows.Load())}} })
	reg.Collect("predsqld_degraded_queries_total",
		"Queries answered with a partial (degraded) result.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.degraded.Load())}} })
	reg.Collect("predsqld_handler_panics_total",
		"Handler panics recovered by the middleware.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.panics.Load())}} })

	// Breaker state transitions (trips) and current position, one series per
	// (table, UDF) breaker. BreakerStatuses returns in sorted order.
	breakerLabels := func(table, udf string) []obs.Label {
		return []obs.Label{{Name: "table", Value: table}, {Name: "udf", Value: udf}}
	}
	reg.Collect("predsqld_breaker_trips_total",
		"Closed-to-open transitions per circuit breaker.", "counter",
		func() []obs.Sample {
			var out []obs.Sample
			for _, b := range s.db.BreakerStatuses() {
				out = append(out, obs.Sample{Labels: breakerLabels(b.Table, b.UDF), Value: float64(b.Trips)})
			}
			return out
		})
	reg.Collect("predsqld_breaker_open",
		"1 when the breaker is open or half-open (shedding or probing), 0 when closed.", "gauge",
		func() []obs.Sample {
			var out []obs.Sample
			for _, b := range s.db.BreakerStatuses() {
				v := 0.0
				if b.State != "closed" {
					v = 1.0
				}
				out = append(out, obs.Sample{Labels: breakerLabels(b.Table, b.UDF), Value: v})
			}
			return out
		})

	reg.Collect("predsqld_cache_total",
		"Cross-query outcome cache lookups by result.", "counter",
		func() []obs.Sample {
			cc := s.db.CacheCounters()
			return []obs.Sample{
				{Labels: []obs.Label{{Name: "result", Value: "hit"}}, Value: float64(cc.Hits)},
				{Labels: []obs.Label{{Name: "result", Value: "miss"}}, Value: float64(cc.Misses)},
			}
		})
	reg.Collect("predsqld_catalog_flushes_total",
		"Completed catalog flushes.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.flushes.Load())}} })
	reg.Collect("predsqld_catalog_flush_errors_total",
		"Failed catalog flushes.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.flushErrors.Load())}} })
}

// instrumentUDF wraps a fallible UDF body so every invocation's wall time
// lands in the per-UDF duration histogram. The observation covers one
// attempt (retries observe once each), so the histogram reflects what the
// predicate actually costs per call.
func instrumentUDF(reg *obs.Registry, name string, body func(context.Context, any) (bool, error)) func(context.Context, any) (bool, error) {
	h := reg.Histogram("predsqld_udf_duration_seconds",
		"UDF invocation wall time per attempt, by UDF.", obs.DefBuckets,
		obs.Label{Name: "udf", Value: name})
	return func(ctx context.Context, v any) (bool, error) {
		start := obs.Now()
		defer h.ObserveSince(start)
		return body(ctx, v)
	}
}

// instrumentPredicate is instrumentUDF for an infallible predicate body
// (the non-chaos registration path).
func instrumentPredicate(reg *obs.Registry, name string, body func(any) bool) func(any) bool {
	h := reg.Histogram("predsqld_udf_duration_seconds",
		"UDF invocation wall time per attempt, by UDF.", obs.DefBuckets,
		obs.Label{Name: "udf", Value: name})
	return func(v any) bool {
		start := obs.Now()
		defer h.ObserveSince(start)
		return body(v)
	}
}

// handleMetrics serves the registry as Prometheus text exposition
// (format 0.0.4). Scraping is lock-brief and safe while queries run.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WriteExposition(w); err != nil {
		// The header is already out; nothing useful left to send.
		return
	}
}

// traceLogger appends one JSON line per traced query to -trace-log. A
// mutex serializes whole lines, so concurrent queries never interleave.
type traceLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// traceRecord is one -trace-log line.
type traceRecord struct {
	SQL   string         `json:"sql"`
	Spans []obs.SpanJSON `json:"spans"`
}

func (l *traceLogger) log(sql string, spans []obs.SpanJSON) {
	if l == nil {
		return
	}
	line, err := json.Marshal(traceRecord{SQL: sql, Spans: spans})
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(line, '\n'))
}
