package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// httpGet fetches path from the test server, returning status and body.
// Error-returning (not t.Fatal) so it is safe on client goroutines.
func httpGet(url, path string) (int, []byte, error) {
	resp, err := http.Get(url + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// scrapeMetrics fetches and parses /metrics, failing the test on invalid
// exposition.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	status, body, err := httpGet(url, "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", status, body)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	return samples
}

func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, 300, 0, serverConfig{})
	for i := 0; i < 3; i++ {
		status, body := mustPostQuery(t, ts.URL, queryRequest{
			SQL: "SELECT * FROM loans WHERE good_credit(id) = 1",
		})
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, status, body)
		}
	}
	// A parse error feeds the error counter.
	if status, _ := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT bogus"}); status != http.StatusBadRequest {
		t.Fatalf("bad query: status %d", status)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := m[`predsqld_queries_total{status="ok"}`]; got != 3 {
		t.Errorf(`queries_total{status="ok"} = %v, want 3`, got)
	}
	if got := m[`predsqld_queries_total{status="error"}`]; got != 1 {
		t.Errorf(`queries_total{status="error"} = %v, want 1`, got)
	}
	// The latency histogram covers every admitted query, including the one
	// that failed to parse — 4 observations, not 3.
	if got := m["predsqld_query_duration_seconds_count"]; got != 4 {
		t.Errorf("query_duration count = %v, want 4", got)
	}
	if m["predsqld_query_duration_seconds_sum"] <= 0 {
		t.Error("query_duration sum not positive")
	}
	if got := m[`predsqld_udf_duration_seconds_count{udf="good_credit"}`]; got == 0 {
		t.Error("udf_duration count = 0, want invocations observed")
	}
	for _, gauge := range []string{"predsqld_in_flight", "predsqld_admission_waiting", "predsqld_max_concurrent"} {
		if _, ok := m[gauge]; !ok {
			t.Errorf("gauge %s missing from exposition", gauge)
		}
	}
	if _, ok := m["predsqld_catalog_flushes_total"]; !ok {
		t.Error("catalog_flushes_total missing from exposition")
	}
}

// TestConcurrentScrapes hammers /stats and /metrics while queries run:
// every scrape must parse as valid exposition and the success counter must
// be monotone. Run under -race this also proves the collectors race-free
// against the handler's atomics.
func TestConcurrentScrapes(t *testing.T) {
	_, ts := testServer(t, 200, 100*time.Microsecond, serverConfig{MaxConcurrent: 4})

	const queries = 16
	var wg sync.WaitGroup
	errc := make(chan error, queries+2)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, err := postQuery(ts.URL, queryRequest{
				SQL: "SELECT * FROM loans WHERE good_credit(id) = 1",
			})
			if err != nil {
				errc <- err
			} else if status != http.StatusOK {
				errc <- fmt.Errorf("query status %d: %s", status, body)
			}
		}()
	}

	done := make(chan struct{})
	var scraperWG sync.WaitGroup
	scrape := func(path string, check func([]byte) error) {
		defer scraperWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			status, body, err := httpGet(ts.URL, path)
			if err != nil {
				errc <- err
				return
			}
			if status != http.StatusOK {
				errc <- fmt.Errorf("GET %s: status %d", path, status)
				return
			}
			if err := check(body); err != nil {
				errc <- fmt.Errorf("GET %s: %v", path, err)
				return
			}
		}
	}
	var lastOK float64
	scraperWG.Add(2)
	go scrape("/metrics", func(body []byte) error {
		m, err := obs.ParseExposition(bytes.NewReader(body))
		if err != nil {
			return err
		}
		ok := m[`predsqld_queries_total{status="ok"}`]
		if ok < lastOK {
			return fmt.Errorf("queries_total{ok} went backwards: %v -> %v", lastOK, ok)
		}
		lastOK = ok
		return nil
	})
	go scrape("/stats", func(body []byte) error {
		var st statsResponse
		return json.Unmarshal(body, &st)
	})

	wg.Wait()
	close(done)
	scraperWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := m[`predsqld_queries_total{status="ok"}`]; got != queries {
		t.Errorf(`queries_total{status="ok"} = %v, want %d`, got, queries)
	}
	if got := m["predsqld_query_duration_seconds_count"]; got != queries {
		t.Errorf("query_duration count = %v, want %d", got, queries)
	}
}

func TestQueryAnalyzeReturnsAnnotatedPlan(t *testing.T) {
	srv, ts := testServer(t, 300, 0, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL:     "SELECT * FROM loans WHERE good_credit(id) = 1",
		Analyze: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.RowCount == 0 || len(out.Rows) == 0 {
		t.Fatal("analyze dropped the result set")
	}
	text := strings.Join(out.Plan, "\n")
	if len(out.Plan) == 0 || !strings.Contains(text, "(actual ") {
		t.Fatalf("plan not annotated:\n%s", text)
	}
	if out.Trace != nil {
		t.Error("trace returned without being requested")
	}
	if srv.served.Load() != 1 {
		t.Errorf("served = %d, want 1", srv.served.Load())
	}
}

func TestExplainAnalyzeSQLGoesThroughExecution(t *testing.T) {
	srv, ts := testServer(t, 300, 0, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL: "EXPLAIN ANALYZE SELECT * FROM loans WHERE good_credit(id) = 1",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// The statement executed (UDF calls happened) and the plan IS the
	// result set, mirroring the library behavior.
	if out.Stats.Evaluations == 0 {
		t.Error("EXPLAIN ANALYZE did not execute the query")
	}
	if len(out.Plan) == 0 || !strings.Contains(strings.Join(out.Plan, "\n"), "(actual ") {
		t.Fatalf("plan not annotated: %v", out.Plan)
	}
	// It also shows up in the query-latency histogram, unlike plan-only
	// EXPLAIN which bypasses admission.
	if srv.queryDur.Count() != 1 {
		t.Errorf("query_duration count = %d, want 1", srv.queryDur.Count())
	}
}

func TestQueryTraceReturnsSpans(t *testing.T) {
	_, ts := testServer(t, 300, 0, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL:   "SELECT * FROM loans WHERE good_credit(id) = 1",
		Trace: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, s := range out.Trace {
		names[s.Name] = true
	}
	for _, want := range []string{"parse", "bind", "plan", "op:scan", "op:exact-eval", "materialize"} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, names)
		}
	}
}

func TestTraceLogWritesJSONLines(t *testing.T) {
	srv, ts := testServer(t, 100, 0, serverConfig{})
	var buf bytes.Buffer
	srv.traceLog = &traceLogger{w: &buf}
	for i := 0; i < 2; i++ {
		// No "trace" in the request: -trace-log alone must capture spans.
		status, body := mustPostQuery(t, ts.URL, queryRequest{
			SQL: "SELECT * FROM loans WHERE good_credit(id) = 1",
		})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec traceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.SQL == "" || len(rec.Spans) == 0 {
			t.Fatalf("empty trace record: %+v", rec)
		}
	}
}

func TestIsExplainSQL(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"EXPLAIN SELECT 1", true},
		{"explain select 1", true},
		{"  EXPLAIN\tSELECT 1", true},
		{"EXPLAIN ANALYZE SELECT 1", false},
		{"explain analyze select 1", false},
		{"SELECT 1", false},
		{"", false},
	}
	for _, c := range cases {
		if got := isExplainSQL(c.sql); got != c.want {
			t.Errorf("isExplainSQL(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}
