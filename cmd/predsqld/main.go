// Command predsqld serves the library's SQL dialect over HTTP: tables and
// ground-truth labels are loaded at startup, and clients POST queries with
// per-request timeouts. It is the served-system face of the repo — the
// cancellable execution pipeline (predeval.QueryContext) is what makes a
// shared server viable, since a slow or hung UDF can no longer pin a
// worker past its deadline.
//
// Usage:
//
//	predsqld -addr :8080 -table loans=lc.csv -truth lc_labels.csv \
//	         -udf good_credit -max-concurrent 8 -timeout 30s
//
// Endpoints:
//
//	POST /query    {"sql": "...", "timeout_ms": 500, "limit": 100,
//	               "explain": false, "analyze": false, "trace": false}
//	               → columns, rows, row ids and execution stats as JSON.
//	               With "explain": true the statement is planned, not
//	               executed: the response carries the physical operator
//	               tree ("plan": one line per operator) and no UDF is ever
//	               invoked. With "analyze": true the query EXECUTES under
//	               EXPLAIN ANALYZE instrumentation: the rows come back as
//	               usual and "plan" carries the tree annotated with
//	               measured per-operator counts. With "trace": true the
//	               response carries "trace": per-phase spans (parse, bind,
//	               plan, per-operator, materialize) with µs offsets.
//	               408 if the request waited out its deadline in
//	               admission, 504 if the deadline expired mid-query, 400 on
//	               bad input — parse errors include the offending token's
//	               position as {"error": ..., "line": l, "col": c}.
//	               With "stream": true the response is chunked NDJSON: one
//	               {"row_id": ..., "row": [...]} object per line, flushed
//	               batch by batch as execution produces rows, then a
//	               terminal {"done": true, ...} line with columns,
//	               row_count, truncated and the full stats. "limit" then
//	               stops production early (unevaluated rows are never paid
//	               for) instead of merely bounding the payload.
//	GET  /tables   registered tables: name, row count, column names/types.
//	GET  /stats    server counters (served/failed/timeouts/…) + tables.
//	GET  /metrics  Prometheus text exposition: query-latency and per-UDF
//	               duration histograms, admission gauges, resilience and
//	               catalog counters (same atomics as /stats).
//	GET  /healthz  liveness probe.
//
// -trace-log FILE appends one JSON line of spans per executed query;
// -pprof-addr serves net/http/pprof on a separate listener.
//
// Admission control is a counting semaphore (-max-concurrent): excess
// queries queue until a slot frees or their deadline fires, so a burst
// degrades to queueing latency instead of unbounded goroutine fan-out.
// SIGINT/SIGTERM drain in-flight queries before exit (graceful shutdown).
//
// With -data-dir the server runs on a durable statistics & outcome
// catalog: every paid-for UDF verdict, sampling outcome and learned
// correlated-column choice is flushed to disk periodically
// (-flush-interval) and on drain, so a restarted server warm-starts
// instead of re-paying the most expensive work. GET /stats reports the
// catalog contents and warm-start counters alongside the cross-query
// cache hit/miss totals.
//
// UDF invocations are resilient: each call runs under a per-attempt
// deadline (-udf-call-timeout) with capped exponential-backoff retries
// (-udf-retries) and a per-(table, UDF) circuit breaker. -on-failure picks
// what a row whose invocation ultimately fails means — fail the query
// ("fail", default), drop the row silently ("skip"), or drop it and mark
// the response degraded ("degrade"); a request can override per query via
// "on_failure". Failed rows never contaminate the outcome cache, the
// durable catalog or learned statistics. A panicking handler answers 500
// JSON instead of killing the connection, and GET /stats carries a
// "resilience" section: handler panics, failure/retry/breaker totals and
// each breaker's live state.
//
// The -chaos-* flags wrap the registered UDF in a seeded deterministic
// fault injector (transient errors, latency spikes, persistently
// panicking values, scripted flapping) for end-to-end failure drills:
//
//	predsqld ... -on-failure degrade -udf-retries 4 \
//	         -chaos-error-rate 0.1 -chaos-latency 5ms -chaos-latency-rate 0.05
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/cliutil"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sqlparse"

	// Registered on http.DefaultServeMux, served only by the optional
	// -pprof-addr listener — the query mux is a fresh ServeMux, so the
	// profiling endpoints never leak onto the public address.
	_ "net/http/pprof"
)

func main() {
	var (
		tables        cliutil.MultiFlag
		addr          = flag.String("addr", ":8080", "listen address")
		truth         = flag.String("truth", "", "labels CSV (id,label) backing the simulated UDF")
		udf           = flag.String("udf", "good_credit", "UDF name to register")
		seed          = flag.Uint64("seed", 1, "random seed")
		parallelism   = flag.Int("parallelism", 0, "per-query UDF worker cap (0 = GOMAXPROCS)")
		batchSize     = flag.Int("batch-size", 0, "rows per execution batch (0 = engine default 1024); smaller lowers streamed first-row latency")
		maxConcurrent = flag.Int("max-concurrent", 8, "queries admitted concurrently; excess queue")
		timeout       = flag.Duration("timeout", 30*time.Second, "default per-request timeout")
		maxTimeout    = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested timeouts")
		udfDelay      = flag.Duration("udf-delay", 0, "artificial latency per UDF call (simulates an expensive predicate)")
		dataDir       = flag.String("data-dir", "", "durable catalog directory: UDF verdicts and learned statistics persist across restarts (empty = in-memory only)")
		flushInterval = flag.Duration("flush-interval", 30*time.Second, "how often the catalog is flushed to disk (0 disables the periodic flush; the drain still flushes)")
		traceLogPath  = flag.String("trace-log", "", "append one JSON line of per-phase spans for every executed query to this file")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")

		onFailure      = flag.String("on-failure", "fail", "default failure policy for rows whose UDF invocation ultimately fails: fail, skip or degrade")
		udfRetries     = flag.Int("udf-retries", 0, "max UDF invocation attempts including the first (0 = default 3)")
		udfCallTimeout = flag.Duration("udf-call-timeout", 0, "per-attempt UDF deadline (0 = unbounded)")

		chaosSeed         = flag.Uint64("chaos-seed", 0, "seed for the deterministic fault-injection schedule (0 = reuse -seed)")
		chaosErrorRate    = flag.Float64("chaos-error-rate", 0, "per-attempt probability of an injected transient UDF error")
		chaosPanicRate    = flag.Float64("chaos-panic-rate", 0, "per-value probability of a persistently panicking UDF body")
		chaosLatency      = flag.Duration("chaos-latency", 0, "injected latency spike duration")
		chaosLatencyRate  = flag.Float64("chaos-latency-rate", 0, "per-attempt probability of an injected latency spike")
		chaosFailAttempts = flag.Int("chaos-fail-attempts", 0, "fail the first N attempts of every value (retry exerciser)")
		chaosFlapPeriod   = flag.Int("chaos-flap-period", 0, "flap schedule period in calls (0 = no flapping)")
		chaosFlapDown     = flag.Int("chaos-flap-down", 0, "calls failed at the start of every flap period")
	)
	flag.Var(&tables, "table", "name=path CSV table (repeatable)")
	flag.Parse()

	if len(tables) == 0 || *truth == "" {
		fmt.Fprintln(os.Stderr, "predsqld: -table and -truth are required")
		flag.Usage()
		os.Exit(2)
	}

	db := predeval.Open(*seed)
	if *parallelism > 0 {
		db.SetParallelism(*parallelism)
	}
	if *batchSize > 0 {
		db.SetBatchSize(*batchSize)
	}
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("predsqld: bad -table %q, want name=path", spec)
		}
		if err := db.LoadCSVFile(name, path); err != nil {
			log.Fatalf("predsqld: %v", err)
		}
	}
	truthLabels, err := labels.LoadFile(*truth)
	if err != nil {
		log.Fatalf("predsqld: %v", err)
	}
	if err := db.SetFailurePolicy(*onFailure); err != nil {
		log.Fatalf("predsqld: %v", err)
	}
	db.SetRetryPolicy(resilience.Policy{
		MaxAttempts: *udfRetries,
		CallTimeout: *udfCallTimeout,
	})

	// The metrics registry exists before UDF registration so the bodies can
	// be instrumented with per-UDF duration histograms.
	metrics := obs.NewRegistry()

	pred := labels.Delayed(labels.Predicate(truthLabels), *udfDelay)
	chaosCfg := resilience.ChaosConfig{
		Seed:         *chaosSeed,
		ErrorRate:    *chaosErrorRate,
		PanicRate:    *chaosPanicRate,
		Latency:      *chaosLatency,
		LatencyRate:  *chaosLatencyRate,
		FailAttempts: *chaosFailAttempts,
		FlapPeriod:   *chaosFlapPeriod,
		FlapDown:     *chaosFlapDown,
	}
	if chaosCfg.Seed == 0 {
		chaosCfg.Seed = *seed
	}
	var chaos *resilience.Chaos
	if chaosCfg.Enabled() {
		// Chaos mode: the simulated predicate runs behind the seeded fault
		// schedule, exercising retries, breakers and degradation end to end.
		chaos = resilience.NewChaos(chaosCfg)
		body := chaos.Wrap(func(_ context.Context, v any) (bool, error) {
			return pred(v), nil
		})
		if err := db.RegisterUDFErr(*udf, instrumentUDF(metrics, *udf, body), 0); err != nil {
			log.Fatalf("predsqld: %v", err)
		}
		log.Printf("predsqld: chaos injection enabled (seed=%d error-rate=%g panic-rate=%g latency=%v@%g fail-attempts=%d flap=%d/%d)",
			chaosCfg.Seed, chaosCfg.ErrorRate, chaosCfg.PanicRate, chaosCfg.Latency, chaosCfg.LatencyRate,
			chaosCfg.FailAttempts, chaosCfg.FlapDown, chaosCfg.FlapPeriod)
	} else if err := db.RegisterUDF(*udf, instrumentPredicate(metrics, *udf, pred), 0); err != nil {
		log.Fatalf("predsqld: %v", err)
	}

	if *dataDir != "" {
		if err := db.OpenCatalog(*dataDir); err != nil {
			log.Fatalf("predsqld: %v", err)
		}
		if rec := db.Catalog().Recovery(); rec.Truncated {
			log.Printf("predsqld: catalog recovered a damaged tail (%s); facts since the last flush were lost and will be re-paid", rec.Note)
		}
		st := db.Catalog().Stats()
		log.Printf("predsqld: catalog %s warm with %d verdicts, %d sample rows, %d column memos",
			*dataDir, st.OutcomeRows, st.SampleRows, st.ColumnMemos)
	}

	srv := newServer(db, serverConfig{
		MaxConcurrent:  *maxConcurrent,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Metrics:        metrics,
	})
	srv.chaos = chaos
	if *traceLogPath != "" {
		f, err := os.OpenFile(*traceLogPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("predsqld: %v", err)
		}
		defer f.Close()
		srv.traceLog = &traceLogger{w: f}
	}
	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers; a dedicated
		// listener keeps them off the public query address.
		go func() {
			log.Printf("predsqld: pprof on %s", *pprofAddr)
			log.Printf("predsqld: pprof listener: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	stopFlusher := srv.startCatalogFlusher(*flushInterval)
	// Header/read timeouts bound connection-level stalls (slow-loris); the
	// per-query deadline machinery only starts once a request is decoded.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting, drain in-flight queries, exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	log.Printf("predsqld: serving on %s (tables %v, max-concurrent %d)", *addr, db.TableNames(), *maxConcurrent)
	select {
	case err := <-done:
		log.Fatalf("predsqld: %v", err)
	case <-ctx.Done():
	}
	// Drain must outlast the longest admissible query deadline, or exit
	// would cut in-flight queries off mid-run.
	shutCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("predsqld: shutdown: %v", err)
	}
	// Flush-on-drain: every verdict paid for during this life becomes
	// durable (and the log is compacted) before exit.
	stopFlusher()
	if err := db.CloseCatalog(); err != nil {
		log.Printf("predsqld: catalog close: %v", err)
	}
	log.Printf("predsqld: shut down (%d queries served in total), bye", srv.served.Load())
}

// serverConfig tunes the query server.
type serverConfig struct {
	// MaxConcurrent is the admission-control width: at most this many
	// queries execute at once; excess requests queue until a slot frees or
	// their deadline fires. ≤ 0 defaults to 8.
	MaxConcurrent int
	// DefaultTimeout applies when a request carries no timeout_ms.
	// ≤ 0 defaults to 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. ≤ 0 defaults to 5m.
	MaxTimeout time.Duration
	// Metrics is the registry GET /metrics serves (nil = a fresh one). Pass
	// the registry used to instrument the UDF bodies so their duration
	// histograms appear in the same exposition.
	Metrics *obs.Registry
}

func (c *serverConfig) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// server wraps a predeval.DB with admission control and counters. The DB's
// engine is safe for concurrent queries (per-query meters, mutex-guarded
// caches), so one shared DB serves every request.
type server struct {
	db    *predeval.DB
	cfg   serverConfig
	sem   chan struct{}
	start time.Time
	// chaos, when non-nil, is the fault injector wrapped around the UDF
	// (surfaced in GET /stats).
	chaos *resilience.Chaos
	// metrics backs GET /metrics; queryDur is its query-latency histogram.
	metrics  *obs.Registry
	queryDur *obs.Histogram
	// traceLog, when non-nil, receives one JSON line of spans per executed
	// query (-trace-log).
	traceLog *traceLogger

	served      atomic.Int64 // completed successfully
	failed      atomic.Int64 // query/parse errors
	timeouts    atomic.Int64 // deadline expired mid-query
	rejected    atomic.Int64 // deadline expired waiting for admission
	disconnects atomic.Int64 // client gone before the query finished
	inflight    atomic.Int64 // currently executing (post-admission)
	waiting     atomic.Int64 // queued for an execution slot right now
	panics      atomic.Int64 // handler panics recovered by the middleware

	failedRows   atomic.Int64 // UDF rows that ultimately failed, summed over queries
	retries      atomic.Int64 // UDF retry attempts, summed over queries
	breakerTrips atomic.Int64 // breaker trips, summed over queries
	degraded     atomic.Int64 // queries answered with a degraded (partial) result

	flushes     atomic.Int64 // completed catalog flushes
	flushErrors atomic.Int64 // failed catalog flushes
	lastFlush   atomic.Int64 // unix seconds of the last successful flush
}

// flushCatalog persists everything learned since the last flush. Safe to
// call concurrently with queries; no-op without an attached catalog.
func (s *server) flushCatalog() {
	if s.db.Catalog() == nil {
		return
	}
	if err := s.db.FlushCatalog(); err != nil {
		s.flushErrors.Add(1)
		log.Printf("predsqld: catalog flush: %v", err)
		return
	}
	s.flushes.Add(1)
	s.lastFlush.Store(time.Now().Unix())
}

// startCatalogFlusher flushes the catalog every interval until the
// returned stop function is called. stop waits for any in-flight flush,
// so the caller can safely close the catalog afterwards. With no catalog
// or a non-positive interval it does nothing (the drain-time flush still
// runs).
func (s *server) startCatalogFlusher(interval time.Duration) (stop func()) {
	if s.db.Catalog() == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.flushCatalog()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

func newServer(db *predeval.DB, cfg serverConfig) *server {
	cfg.fill()
	s := &server{
		db:      db,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		start:   time.Now(),
		metrics: cfg.Metrics,
	}
	s.registerMetrics()
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /tables", s.handleTables)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: a panicking handler answers
// 500 with a JSON error instead of killing the connection (net/http's
// default) — and never the server. Recovered panics are counted in
// GET /stats. http.ErrAbortHandler keeps its conventional meaning.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			log.Printf("predsqld: recovered handler panic on %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// Best effort: if the handler already started its response this
			// write is a no-op, but the connection survives either way.
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
		}()
		next.ServeHTTP(w, r)
	})
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMS overrides the server's default per-request timeout
	// (clamped to -max-timeout). 0 means the default.
	TimeoutMS int64 `json:"timeout_ms"`
	// Limit caps the rows and row_ids serialized into the response
	// (0 = all); row_count always reports the full result size. For a
	// buffered response the query still executes fully — the limit only
	// bounds the payload. For a streamed response ("stream": true) the
	// limit instead STOPS PRODUCTION: once that many rows are written the
	// upstream evaluation is cancelled, so unevaluated rows are never paid
	// for and stats cover only the work performed.
	Limit int `json:"limit"`
	// Stream switches the response to chunked NDJSON: one
	// {"row_id": ..., "row": [...]} object per result row, written and
	// flushed batch by batch as execution produces them, then a terminal
	// {"done": true, ...} line carrying columns, row_count, truncated and
	// the full execution stats. For streaming plan shapes (exact
	// selections, conjunction waves) the first rows arrive while later
	// rows are still unevaluated. An error after rows have been written is
	// reported as a final {"error": ...} line. Incompatible with "explain"
	// and "analyze" (400).
	Stream bool `json:"stream"`
	// Explain plans the statement instead of executing it: the response is
	// the physical operator tree (with estimated costs and the chosen
	// correlated column where known) and no UDF is invoked. Equivalent to
	// prefixing the SQL with EXPLAIN.
	Explain bool `json:"explain"`
	// OnFailure overrides the server's failure policy for this query:
	// "fail", "skip" or "degrade" ("" keeps the server default).
	OnFailure string `json:"on_failure"`
	// Analyze executes the query with EXPLAIN ANALYZE instrumentation: the
	// response carries the result as usual plus "plan", the operator tree
	// annotated with measured per-operator counts. Equivalent to prefixing
	// the SQL with EXPLAIN ANALYZE (which instead returns the plan as the
	// result set, like Postgres). Unlike "explain", the query RUNS — it
	// goes through admission control and invokes UDFs.
	Analyze bool `json:"analyze"`
	// Trace records per-phase spans (parse, bind, plan, per-operator,
	// materialize) and returns them in the response as "trace".
	Trace bool `json:"trace"`
}

// queryStats mirrors predeval.Stats for the wire.
type queryStats struct {
	Evaluations         int     `json:"evaluations"`
	Retrievals          int     `json:"retrievals"`
	Sampled             int     `json:"sampled"`
	Cost                float64 `json:"cost"`
	ChosenColumn        string  `json:"chosen_column,omitempty"`
	Exact               bool    `json:"exact"`
	AchievedRecallBound float64 `json:"achieved_recall_bound,omitempty"`
	CacheHits           int     `json:"cache_hits"`
	CacheMisses         int     `json:"cache_misses"`
	FailedRows          int     `json:"failed_rows,omitempty"`
	Retries             int     `json:"retries,omitempty"`
	BreakerTrips        int     `json:"breaker_trips,omitempty"`
}

// queryResponse is the POST /query success payload.
type queryResponse struct {
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	RowIDs    []int      `json:"row_ids"`
	RowCount  int        `json:"row_count"`
	Truncated bool       `json:"truncated"`
	// Degraded marks a partial result: the "degrade" failure policy was in
	// effect and rows were excluded because their UDF invocation failed.
	Degraded  bool       `json:"degraded,omitempty"`
	Stats     queryStats `json:"stats"`
	ElapsedMS float64    `json:"elapsed_ms"`
	// Plan is the EXPLAIN ANALYZE annotated operator tree ("analyze": true).
	Plan []string `json:"plan,omitempty"`
	// Trace is the query's span list ("trace": true).
	Trace []obs.SpanJSON `json:"trace,omitempty"`
}

// wireStats converts execution stats to the wire mirror.
func wireStats(st predeval.Stats) queryStats {
	return queryStats{
		Evaluations:         st.Evaluations,
		Retrievals:          st.Retrievals,
		Sampled:             st.Sampled,
		Cost:                st.Cost,
		ChosenColumn:        st.ChosenColumn,
		Exact:               st.Exact,
		AchievedRecallBound: st.AchievedRecallBound,
		CacheHits:           st.CacheHits,
		CacheMisses:         st.CacheMisses,
		FailedRows:          st.FailedRows,
		Retries:             st.Retries,
		BreakerTrips:        st.BreakerTrips,
	}
}

// streamRow is one NDJSON data line of a streamed query response.
type streamRow struct {
	RowID int      `json:"row_id"`
	Row   []string `json:"row"`
}

// streamDone is the terminal NDJSON line of a streamed query response.
type streamDone struct {
	Done      bool     `json:"done"`
	Columns   []string `json:"columns"`
	RowCount  int      `json:"row_count"`
	Truncated bool     `json:"truncated"`
	// Degraded marks a partial result under the "degrade" failure policy.
	Degraded  bool       `json:"degraded,omitempty"`
	Stats     queryStats `json:"stats"`
	ElapsedMS float64    `json:"elapsed_ms"`
	// Trace is the query's span list ("trace": true).
	Trace []obs.SpanJSON `json:"trace,omitempty"`
}

// errorResponse is the error payload; parse errors carry the offending
// token's 1-based line and column.
type errorResponse struct {
	Error string `json:"error"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// errorBody builds the error payload, surfacing parser positions when the
// error chain carries them.
func errorBody(err error) errorResponse {
	resp := errorResponse{Error: err.Error()}
	var perr *sqlparse.Error
	if errors.As(err, &perr) {
		resp.Line, resp.Col = perr.Line, perr.Col
	}
	return resp
}

// explainResponse is the POST /query payload when "explain" is set (or the
// SQL starts with EXPLAIN): the operator tree, one line per operator.
type explainResponse struct {
	Plan []string `json:"plan"`
}

// isExplainSQL reports whether the statement is a plan-only EXPLAIN: first
// word EXPLAIN and NOT followed by ANALYZE. Keyword-explain requests take
// the same fast path as the request flag; EXPLAIN ANALYZE executes UDFs,
// so it must go through admission control like any other query.
func isExplainSQL(sql string) bool {
	fields := strings.Fields(sql)
	if len(fields) == 0 || !strings.EqualFold(fields[0], "EXPLAIN") {
		return false
	}
	return len(fields) < 2 || !strings.EqualFold(fields[1], "ANALYZE")
}

// errAdmission marks a request whose deadline fired while queueing for an
// execution slot (reported 408, distinct from mid-query 504 timeouts).
var errAdmission = errors.New("admission wait timed out")

// statusClientClosedRequest is nginx's conventional 499 for a client that
// disconnected before the response; net/http has no constant for it.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Bound the request body: a query payload is SQL plus two ints, so 1MiB
	// is generous — without this a single huge POST could exhaust memory
	// before admission control ever runs.
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing sql"})
		return
	}
	if req.Stream {
		if req.Explain || req.Analyze || isExplainSQL(req.SQL) {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "explain/analyze cannot be streamed"})
			return
		}
		s.handleStreamQuery(w, r, req)
		return
	}
	if req.Explain || isExplainSQL(req.SQL) {
		// Planning never invokes a UDF, so it bypasses admission control:
		// an EXPLAIN answers immediately even when every slot is busy. The
		// EXPLAIN keyword and the request flag take the same path, so both
		// return the same {"plan": [...]} payload.
		text, err := s.db.Explain(req.SQL)
		if err != nil {
			s.failed.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody(err))
			return
		}
		s.served.Add(1)
		writeJSON(w, http.StatusOK, explainResponse{
			Plan: strings.Split(strings.TrimRight(text, "\n"), "\n"),
		})
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	// The deadline covers admission waiting AND execution: a query that
	// queues for its whole budget is answered 408 without ever running.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Tracing: requested per query, or forced server-wide by -trace-log.
	var tr *obs.Trace
	if req.Trace || s.traceLog != nil {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}

	// The execution slot is held only while the engine runs — response
	// encoding happens after release, so a slow-reading client cannot pin
	// an admission slot past its query.
	var started time.Time
	var elapsed time.Duration
	rows, err := func() (*predeval.Rows, error) {
		s.waiting.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.waiting.Add(-1)
		case <-ctx.Done():
			s.waiting.Add(-1)
			// Distinguish "deadline ran out while queueing" (admission
			// pressure, 408) from "client hung up while queueing" (499).
			if errors.Is(ctx.Err(), context.Canceled) {
				return nil, ctx.Err()
			}
			return nil, errAdmission
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		started = time.Now()
		defer func() { elapsed = time.Since(started) }()
		return s.db.QueryContextOptions(ctx, req.SQL,
			predeval.QueryOptions{OnFailure: req.OnFailure, Analyze: req.Analyze})
	}()
	if !started.IsZero() {
		s.queryDur.Observe(elapsed.Seconds())
	}
	if tr != nil {
		s.traceLog.log(req.SQL, tr.Spans())
	}
	if err != nil {
		switch {
		case errors.Is(err, errAdmission):
			s.rejected.Add(1)
			writeJSON(w, http.StatusRequestTimeout,
				errorResponse{Error: "timed out waiting for an execution slot"})
		case errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Add(1)
			writeJSON(w, http.StatusGatewayTimeout,
				errorResponse{Error: fmt.Sprintf("query exceeded its %v deadline", timeout)})
		case errors.Is(err, context.Canceled):
			// The client went away mid-query; nobody reads this response,
			// but count it apart from genuine query errors.
			s.disconnects.Add(1)
			writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error()})
		default:
			s.failed.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody(err))
		}
		return
	}

	n := rows.Len()
	shown := n
	if req.Limit > 0 && req.Limit < n {
		shown = req.Limit
	}
	ids := rows.RowIDs()
	if len(ids) > shown {
		ids = ids[:shown]
	}
	out := queryResponse{
		Columns:   rows.Columns(),
		Rows:      make([][]string, 0, shown),
		RowIDs:    ids,
		RowCount:  n,
		Truncated: shown < n,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		Plan:      rows.Plan(),
	}
	if req.Trace && tr != nil {
		out.Trace = tr.Spans()
	}
	for i := 0; i < shown; i++ {
		out.Rows = append(out.Rows, rows.Row(i))
	}
	st := rows.Stats()
	out.Degraded = st.Degraded
	out.Stats = wireStats(st)
	s.failedRows.Add(int64(st.FailedRows))
	s.retries.Add(int64(st.Retries))
	s.breakerTrips.Add(int64(st.BreakerTrips))
	if st.Degraded {
		s.degraded.Add(1)
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, out)
}

// handleStreamQuery answers a "stream": true request with chunked NDJSON:
// row lines are written and flushed as execution emits batches, so the
// first rows reach the client while later rows are still being evaluated.
// The admission slot is held for the whole stream — unlike the buffered
// path, production and delivery are interleaved by design. Errors before
// the first row use the normal status-code taxonomy; once rows are out the
// status is already 200, so a failure becomes a final {"error": ...} line.
func (s *server) handleStreamQuery(w http.ResponseWriter, r *http.Request, req queryRequest) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var tr *obs.Trace
	if req.Trace || s.traceLog != nil {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}

	s.waiting.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.waiting.Add(-1)
	case <-ctx.Done():
		s.waiting.Add(-1)
		if errors.Is(ctx.Err(), context.Canceled) {
			s.disconnects.Add(1)
			writeJSON(w, statusClientClosedRequest, errorResponse{Error: ctx.Err().Error()})
			return
		}
		s.rejected.Add(1)
		writeJSON(w, http.StatusRequestTimeout,
			errorResponse{Error: "timed out waiting for an execution slot"})
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerSent := false
	sendHeader := func() {
		if !headerSent {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			headerSent = true
		}
	}
	emit := func(ids []int, cells [][]string) error {
		sendHeader()
		for i, id := range ids {
			if err := enc.Encode(streamRow{RowID: id, Row: cells[i]}); err != nil {
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	started := time.Now()
	res, err := s.db.QueryStream(ctx, req.SQL,
		predeval.StreamOptions{OnFailure: req.OnFailure, Limit: req.Limit}, emit)
	elapsed := time.Since(started)
	s.queryDur.Observe(elapsed.Seconds())
	if tr != nil {
		s.traceLog.log(req.SQL, tr.Spans())
	}
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Add(1)
			status = http.StatusGatewayTimeout
			err = fmt.Errorf("query exceeded its %v deadline", timeout)
		case errors.Is(err, context.Canceled):
			s.disconnects.Add(1)
			status = statusClientClosedRequest
		default:
			s.failed.Add(1)
		}
		if !headerSent {
			writeJSON(w, status, errorBody(err))
			return
		}
		// Rows are already out on a 200; the error becomes the final line.
		_ = enc.Encode(errorBody(err))
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	sendHeader() // a zero-row result still answers NDJSON
	st := res.Stats
	done := streamDone{
		Done:      true,
		Columns:   res.Columns,
		RowCount:  res.RowCount,
		Truncated: res.Truncated,
		Degraded:  st.Degraded,
		Stats:     wireStats(st),
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	}
	if req.Trace && tr != nil {
		done.Trace = tr.Spans()
	}
	_ = enc.Encode(done)
	if flusher != nil {
		flusher.Flush()
	}
	s.failedRows.Add(int64(st.FailedRows))
	s.retries.Add(int64(st.Retries))
	s.breakerTrips.Add(int64(st.BreakerTrips))
	if st.Degraded {
		s.degraded.Add(1)
	}
	s.served.Add(1)
}

// tableColumn is one column of a GET /tables entry.
type tableColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// tableInfo is one GET /tables entry.
type tableInfo struct {
	Name    string        `json:"name"`
	Rows    int           `json:"rows"`
	Columns []tableColumn `json:"columns"`
}

// handleTables lists the registered tables with row counts and schemas.
func (s *server) handleTables(w http.ResponseWriter, _ *http.Request) {
	tables := make([]tableInfo, 0)
	for _, name := range s.db.TableNames() {
		info, err := s.db.TableInfo(name)
		if err != nil {
			continue
		}
		ti := tableInfo{Name: info.Name, Rows: info.Rows}
		for _, c := range info.Columns {
			ti.Columns = append(ti.Columns, tableColumn{Name: c.Name, Type: c.Type})
		}
		tables = append(tables, ti)
	}
	writeJSON(w, http.StatusOK, struct {
		Tables []tableInfo `json:"tables"`
	}{tables})
}

// cacheStats is the cross-query outcome-cache section of GET /stats.
type cacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// catalogStats is the durable-catalog section of GET /stats (present only
// when the server runs with -data-dir).
type catalogStats struct {
	Dir            string `json:"dir"`
	OutcomeRows    int    `json:"outcome_rows"`
	SampleRows     int    `json:"sample_rows"`
	ColumnMemos    int    `json:"column_memos"`
	ColumnMemoHits int64  `json:"column_memo_hits"`
	SeededRows     int64  `json:"seeded_rows"`
	Flushes        int64  `json:"flushes"`
	FlushErrors    int64  `json:"flush_errors,omitempty"`
	LastFlushUnix  int64  `json:"last_flush_unix,omitempty"`
	Recovered      bool   `json:"recovered,omitempty"`
}

// breakerStats is one circuit breaker's state in GET /stats.
type breakerStats struct {
	Table string `json:"table"`
	UDF   string `json:"udf"`
	State string `json:"state"`
	Trips int64  `json:"trips"`
}

// resilienceStats is the failure-handling section of GET /stats:
// recovered handler panics, UDF failure/retry/breaker totals summed over
// all served queries, and the live state of every circuit breaker.
type resilienceStats struct {
	HandlerPanics   int64          `json:"handler_panics"`
	FailedRows      int64          `json:"failed_rows"`
	Retries         int64          `json:"retries"`
	BreakerTrips    int64          `json:"breaker_trips"`
	DegradedQueries int64          `json:"degraded_queries"`
	Breakers        []breakerStats `json:"breakers,omitempty"`
	ChaosCalls      int64          `json:"chaos_calls,omitempty"`
}

// statsResponse is the GET /stats payload.
type statsResponse struct {
	UptimeS       float64         `json:"uptime_s"`
	Served        int64           `json:"served"`
	Failed        int64           `json:"failed"`
	Timeouts      int64           `json:"timeouts"`
	Rejected      int64           `json:"rejected"`
	Disconnects   int64           `json:"disconnects"`
	InFlight      int64           `json:"in_flight"`
	MaxConcurrent int             `json:"max_concurrent"`
	Tables        map[string]int  `json:"tables"`
	Cache         cacheStats      `json:"cache"`
	Resilience    resilienceStats `json:"resilience"`
	Catalog       *catalogStats   `json:"catalog,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	tables := make(map[string]int)
	for _, name := range s.db.TableNames() {
		if n, err := s.db.NumRows(name); err == nil {
			tables[name] = n
		}
	}
	cc := s.db.CacheCounters()
	resp := statsResponse{
		UptimeS:       time.Since(s.start).Seconds(),
		Served:        s.served.Load(),
		Failed:        s.failed.Load(),
		Timeouts:      s.timeouts.Load(),
		Rejected:      s.rejected.Load(),
		Disconnects:   s.disconnects.Load(),
		InFlight:      s.inflight.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		Tables:        tables,
		Cache:         cacheStats{Hits: cc.Hits, Misses: cc.Misses},
		Resilience: resilienceStats{
			HandlerPanics:   s.panics.Load(),
			FailedRows:      s.failedRows.Load(),
			Retries:         s.retries.Load(),
			BreakerTrips:    s.breakerTrips.Load(),
			DegradedQueries: s.degraded.Load(),
		},
	}
	for _, b := range s.db.BreakerStatuses() {
		resp.Resilience.Breakers = append(resp.Resilience.Breakers,
			breakerStats{Table: b.Table, UDF: b.UDF, State: b.State, Trips: b.Trips})
	}
	if s.chaos != nil {
		resp.Resilience.ChaosCalls = s.chaos.Calls()
	}
	if cat := s.db.Catalog(); cat != nil {
		st := cat.Stats()
		resp.Catalog = &catalogStats{
			Dir:            cat.Dir(),
			OutcomeRows:    st.OutcomeRows,
			SampleRows:     st.SampleRows,
			ColumnMemos:    st.ColumnMemos,
			ColumnMemoHits: cc.ColumnMemoHits,
			SeededRows:     cc.SeededRows,
			Flushes:        s.flushes.Load(),
			FlushErrors:    s.flushErrors.Load(),
			LastFlushUnix:  s.lastFlush.Load(),
			Recovered:      st.Recovered,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
