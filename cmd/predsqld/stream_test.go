package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/stats"
)

// streamTestServer is testServer with a configurable batch size and a
// hook around the UDF body, for exercising the NDJSON streaming path.
func streamTestServer(t *testing.T, n, batchSize, parallelism int, wrap func(id int64, verdict bool) bool) (*server, *httptest.Server) {
	t.Helper()
	rng := stats.NewRNG(9)
	var sb strings.Builder
	sb.WriteString("id,grade\n")
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	sels := []float64{0.9, 0.5, 0.1}
	for i := 0; i < n; i++ {
		truth[int64(i)] = rng.Bernoulli(sels[i%3])
		fmt.Fprintf(&sb, "%d,%s\n", i, grades[i%3])
	}
	db := predeval.Open(1)
	db.SetUDFCache(false)
	db.SetBatchSize(batchSize)
	if parallelism > 0 {
		db.SetParallelism(parallelism)
	}
	if err := db.LoadCSV("loans", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	body := func(v any) bool {
		id := v.(int64)
		verdict := truth[id]
		if wrap != nil {
			verdict = wrap(id, verdict)
		}
		return verdict
	}
	if err := db.RegisterUDF("good_credit", body, 0); err != nil {
		t.Fatal(err)
	}
	srv := newServer(db, serverConfig{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postStream POSTs a streaming query and returns the response for
// incremental reading. The caller closes the body.
func postStream(t *testing.T, url string, req queryRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerStreamNDJSON(t *testing.T) {
	_, ts := streamTestServer(t, 300, 32, 0, nil)
	resp := postStream(t, ts.URL, queryRequest{
		SQL:    "SELECT * FROM loans WHERE good_credit(id) = 1",
		Stream: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var rows []streamRow
	var done *streamDone
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if done != nil {
			t.Fatalf("line after the terminal done line: %s", line)
		}
		if bytes.Contains(line, []byte(`"done":true`)) {
			done = new(streamDone)
			if err := json.Unmarshal(line, done); err != nil {
				t.Fatalf("bad done line %s: %v", line, err)
			}
			continue
		}
		var row streamRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("bad row line %s: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil {
		t.Fatal("stream ended without a done line")
	}
	if done.RowCount != len(rows) || done.Truncated {
		t.Fatalf("done reports %d rows (truncated=%v), stream carried %d",
			done.RowCount, done.Truncated, len(rows))
	}
	if !done.Stats.Exact || done.Stats.Evaluations != 300 {
		t.Fatalf("stats %+v, want exact with 300 evaluations", done.Stats)
	}
	if len(done.Columns) != 2 || done.Columns[0] != "id" {
		t.Fatalf("columns %v", done.Columns)
	}

	// The streamed rows must match the buffered response bit for bit.
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL: "SELECT * FROM loans WHERE good_credit(id) = 1",
	})
	if status != http.StatusOK {
		t.Fatalf("buffered status %d: %s", status, body)
	}
	var buffered queryResponse
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if len(rows) != buffered.RowCount {
		t.Fatalf("streamed %d rows, buffered %d", len(rows), buffered.RowCount)
	}
	for i, row := range rows {
		if row.RowID != buffered.RowIDs[i] || !reflect.DeepEqual(row.Row, buffered.Rows[i]) {
			t.Fatalf("row %d: streamed (%d, %v), buffered (%d, %v)",
				i, row.RowID, row.Row, buffered.RowIDs[i], buffered.Rows[i])
		}
	}
}

// TestServerStreamLimitStopsProduction is the limit/stream regression at
// the served layer: the limit stops evaluation, it does not truncate a
// fully evaluated result.
func TestServerStreamLimitStopsProduction(t *testing.T) {
	var calls atomic.Int64
	_, ts := streamTestServer(t, 2000, 16, 1, func(_ int64, v bool) bool {
		calls.Add(1)
		return v
	})
	resp := postStream(t, ts.URL, queryRequest{
		SQL:    "SELECT id FROM loans WHERE good_credit(id) = 1",
		Stream: true,
		Limit:  5,
	})
	defer resp.Body.Close()
	var done *streamDone
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done":true`)) {
			done = new(streamDone)
			if err := json.Unmarshal(sc.Bytes(), done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rows++
	}
	if done == nil {
		t.Fatal("no done line")
	}
	if rows != 5 || done.RowCount != 5 || !done.Truncated {
		t.Fatalf("rows=%d done=%+v, want 5 truncated rows", rows, done)
	}
	if c := calls.Load(); c >= 1000 {
		t.Fatalf("limit 5 still evaluated %d of 2000 rows; production was not stopped", c)
	}
	if done.Stats.Evaluations >= 1000 {
		t.Fatalf("Stats.Evaluations = %d, want far below 2000", done.Stats.Evaluations)
	}
}

// TestServerStreamFirstRowBeforeFinalWave is the end-to-end acceptance
// test: the first NDJSON row must reach the client while later UDF waves
// are still running. The UDF blocks on high row ids until the client has
// read the first row line — if streaming buffered the whole result, the
// query could never finish.
func TestServerStreamFirstRowBeforeFinalWave(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	var timedOut atomic.Bool
	_, ts := streamTestServer(t, 1000, 8, 1, func(id int64, v bool) bool {
		if id >= 500 {
			select {
			case <-gate:
			case <-time.After(20 * time.Second):
				timedOut.Store(true)
			}
		}
		return v
	})
	resp := postStream(t, ts.URL, queryRequest{
		SQL:    "SELECT id FROM loans WHERE good_credit(id) = 1",
		Stream: true,
	})
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var done *streamDone
	rows := 0
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done":true`)) {
			done = new(streamDone)
			if err := json.Unmarshal(sc.Bytes(), done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rows++
		// First row in hand while rows ≥ 500 are still gated: release them.
		gateOnce.Do(func() { close(gate) })
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if timedOut.Load() {
		t.Fatal("UDF gate timed out: the first row never reached the client before the final waves")
	}
	if done == nil || rows == 0 {
		t.Fatalf("rows=%d done=%v, want a completed stream", rows, done)
	}
	if done.Stats.Evaluations != 1000 {
		t.Fatalf("evaluations = %d, want the full 1000 after the gate opened", done.Stats.Evaluations)
	}
}

func TestServerStreamRejectsExplainAnalyze(t *testing.T) {
	_, ts := streamTestServer(t, 30, 0, 0, nil)
	for _, req := range []queryRequest{
		{SQL: "SELECT id FROM loans WHERE good_credit(id) = 1", Stream: true, Explain: true},
		{SQL: "SELECT id FROM loans WHERE good_credit(id) = 1", Stream: true, Analyze: true},
		{SQL: "EXPLAIN SELECT id FROM loans WHERE good_credit(id) = 1", Stream: true},
	} {
		status, body := mustPostQuery(t, ts.URL, req)
		if status != http.StatusBadRequest {
			t.Fatalf("%+v: status %d (%s), want 400", req, status, body)
		}
	}
}

// TestServerMetricsBatchGauges pins the batch observability surface on
// /metrics: after a query, the peak-batch-rows gauge and total-batches
// counter are live, and nothing is left in flight.
func TestServerMetricsBatchGauges(t *testing.T) {
	_, ts := streamTestServer(t, 300, 64, 0, nil)
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL: "SELECT id FROM loans WHERE good_credit(id) = 1",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	samples := scrapeMetrics(t, ts.URL)
	if v, ok := samples["predsqld_batches_in_flight"]; !ok || v != 0 {
		t.Errorf("predsqld_batches_in_flight = %v (present=%v), want 0", v, ok)
	}
	if v, ok := samples["predsqld_peak_batch_rows"]; !ok || v <= 0 || v > 64 {
		t.Errorf("predsqld_peak_batch_rows = %v (present=%v), want 1..64", v, ok)
	}
	if v, ok := samples["predsqld_batches_total"]; !ok || v <= 0 {
		t.Errorf("predsqld_batches_total = %v (present=%v), want > 0", v, ok)
	}
}

// TestServerStreamDeterminismMatrix pins the determinism contract at the
// served layer: the NDJSON row lines and final stats are identical across
// parallelism {1, 8} × batch size {1, 64, 4096} on a chaos workload
// (first-attempt transient failures keyed per row id, retried to
// success). elapsed_ms is the only field allowed to differ.
func TestServerStreamDeterminismMatrix(t *testing.T) {
	run := func(parallelism, batchSize int) ([]string, streamDone) {
		t.Helper()
		db := predeval.Open(1)
		db.SetUDFCache(false)
		db.SetParallelism(parallelism)
		db.SetBatchSize(batchSize)
		rng := stats.NewRNG(9)
		var sb strings.Builder
		sb.WriteString("id,grade\n")
		truth := make(map[int64]bool, 600)
		grades := []string{"A", "B", "C"}
		sels := []float64{0.9, 0.5, 0.1}
		for i := 0; i < 600; i++ {
			truth[int64(i)] = rng.Bernoulli(sels[i%3])
			fmt.Fprintf(&sb, "%d,%s\n", i, grades[i%3])
		}
		if err := db.LoadCSV("loans", strings.NewReader(sb.String())); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		attempts := make(map[int64]int)
		err := db.RegisterUDFErr("good_credit", func(_ context.Context, v any) (bool, error) {
			id := v.(int64)
			mu.Lock()
			attempts[id]++
			first := attempts[id] == 1
			mu.Unlock()
			if id%7 == 3 && first {
				return false, fmt.Errorf("chaos: id %d flaked", id)
			}
			return truth[id], nil
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(db, serverConfig{})
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		resp := postStream(t, ts.URL, queryRequest{
			SQL:    "SELECT id, grade FROM loans WHERE good_credit(id) = 1",
			Stream: true,
		})
		defer resp.Body.Close()
		var lines []string
		var done streamDone
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if bytes.Contains(sc.Bytes(), []byte(`"done":true`)) {
				if err := json.Unmarshal(sc.Bytes(), &done); err != nil {
					t.Fatal(err)
				}
				continue
			}
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		done.ElapsedMS = 0
		return lines, done
	}
	baseLines, baseDone := run(1, 1)
	if len(baseLines) == 0 || baseDone.Stats.Retries == 0 {
		t.Fatalf("baseline carried %d rows, %d retries; the chaos workload should exercise retries",
			len(baseLines), baseDone.Stats.Retries)
	}
	for _, p := range []int{1, 8} {
		for _, b := range []int{1, 64, 4096} {
			if p == 1 && b == 1 {
				continue
			}
			lines, done := run(p, b)
			if !reflect.DeepEqual(lines, baseLines) {
				t.Errorf("p=%d batch=%d: row lines diverged (%d vs %d)", p, b, len(lines), len(baseLines))
			}
			if !reflect.DeepEqual(done, baseDone) {
				t.Errorf("p=%d batch=%d: done line diverged:\n got %+v\nwant %+v", p, b, done, baseDone)
			}
		}
	}
}
