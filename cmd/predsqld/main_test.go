package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/stats"
)

// testServer builds an in-memory loans DB behind a server. udfDelay
// simulates an expensive predicate so per-request timeouts have teeth; the
// cross-query cache is disabled so repeated queries stay expensive.
func testServer(t *testing.T, n int, udfDelay time.Duration, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	rng := stats.NewRNG(9)
	var sb strings.Builder
	sb.WriteString("id,grade\n")
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	sels := []float64{0.9, 0.5, 0.1}
	for i := 0; i < n; i++ {
		truth[int64(i)] = rng.Bernoulli(sels[i%3])
		fmt.Fprintf(&sb, "%d,%s\n", i, grades[i%3])
	}
	db := predeval.Open(1)
	db.SetUDFCache(false)
	if err := db.LoadCSV("loans", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	pred := labels.Delayed(labels.Predicate(truth), udfDelay)
	if err := db.RegisterUDF("good_credit", instrumentPredicate(cfg.Metrics, "good_credit", pred), 0); err != nil {
		t.Fatal(err)
	}
	srv := newServer(db, cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery returns an error instead of failing the test so it is safe to
// call from client goroutines (t.Fatal must not run off the test goroutine).
func postQuery(url string, req queryRequest) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// mustPostQuery is postQuery for direct use on the test goroutine.
func mustPostQuery(t *testing.T, url string, req queryRequest) (int, []byte) {
	t.Helper()
	status, body, err := postQuery(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return status, body
}

func TestServerQueryBasic(t *testing.T) {
	_, ts := testServer(t, 300, 0, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL: "SELECT * FROM loans WHERE good_credit(id) = 1",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Stats.Exact || out.RowCount == 0 || len(out.Rows) != out.RowCount {
		t.Fatalf("response %+v", out)
	}
	if len(out.Columns) != 2 || out.Columns[0] != "id" {
		t.Fatalf("columns %v", out.Columns)
	}
}

func TestServerLimitTruncates(t *testing.T) {
	_, ts := testServer(t, 300, 0, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL:   "SELECT * FROM loans WHERE good_credit(id) = 1",
		Limit: 5,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out queryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 5 || !out.Truncated || out.RowCount <= 5 {
		t.Fatalf("limit ignored: rows=%d truncated=%v count=%d", len(out.Rows), out.Truncated, out.RowCount)
	}
	if len(out.RowIDs) != 5 {
		t.Fatalf("row_ids not truncated with the limit: %d", len(out.RowIDs))
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := testServer(t, 60, 0, serverConfig{})
	if status, _ := mustPostQuery(t, ts.URL, queryRequest{SQL: "   "}); status != http.StatusBadRequest {
		t.Fatalf("empty sql: status %d", status)
	}
	if status, _ := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT FROM"}); status != http.StatusBadRequest {
		t.Fatalf("bad sql: status %d", status)
	}
	if status, _ := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT * FROM missing WHERE good_credit(id) = 1"}); status != http.StatusBadRequest {
		t.Fatalf("missing table: status %d", status)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
}

// TestServerConcurrentMixedTimeouts is the acceptance-criteria test: ≥ 8
// concurrent queries under -race with per-request timeouts honored — the
// generous ones succeed, the tiny ones come back 504/408 without wedging a
// worker, and the server keeps serving afterwards.
func TestServerConcurrentMixedTimeouts(t *testing.T) {
	srv, ts := testServer(t, 240, 500*time.Microsecond, serverConfig{
		MaxConcurrent:  8,
		DefaultTimeout: 30 * time.Second,
	})
	const clients = 12
	statuses := make([]int, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := queryRequest{SQL: "SELECT * FROM loans WHERE good_credit(id) = 1"}
			if i%3 == 0 {
				req.TimeoutMS = 1 // cannot finish a 240-row scan at 500µs/call
			}
			// postQuery, not mustPostQuery: t.Fatal must stay on the test
			// goroutine, so transport errors are surfaced after the join.
			statuses[i], _, errs[i] = postQuery(ts.URL, req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	var ok, timedOut int
	for i, status := range statuses {
		switch {
		case i%3 == 0:
			// 504 if the deadline fired mid-query, 408 if it fired while
			// queueing for admission. Both honor the timeout.
			if status != http.StatusGatewayTimeout && status != http.StatusRequestTimeout {
				t.Errorf("client %d (1ms timeout): status %d", i, status)
			} else {
				timedOut++
			}
		default:
			if status != http.StatusOK {
				t.Errorf("client %d (generous timeout): status %d", i, status)
			} else {
				ok++
			}
		}
	}
	if ok != 8 || timedOut != 4 {
		t.Fatalf("ok=%d timedOut=%d, want 8/4", ok, timedOut)
	}

	// Counters add up and nothing is stuck in flight.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != int64(ok) || st.Timeouts+st.Rejected != int64(timedOut) {
		t.Fatalf("stats %+v, want served=%d timeouts+rejected=%d", st, ok, timedOut)
	}
	if st.InFlight != 0 {
		t.Fatalf("%d queries still in flight", st.InFlight)
	}
	if st.Tables["loans"] != 240 {
		t.Fatalf("tables %v", st.Tables)
	}

	// The pool recovered: one more query succeeds.
	if status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL: "SELECT * FROM loans WHERE good_credit(id) = 1",
	}); status != http.StatusOK {
		t.Fatalf("post-storm query: status %d: %s", status, body)
	}
	if got := srv.served.Load(); got != int64(ok)+1 {
		t.Fatalf("served %d, want %d", got, ok+1)
	}
}

// TestServerAdmissionControl: with one execution slot and a long-running
// query holding it, a short-deadline query must be turned away with 408
// instead of hanging.
func TestServerAdmissionControl(t *testing.T) {
	_, ts := testServer(t, 400, 1*time.Millisecond, serverConfig{
		MaxConcurrent:  1,
		DefaultTimeout: 30 * time.Second,
	})
	type result struct {
		status int
		err    error
	}
	slowDone := make(chan result, 1)
	go func() {
		status, _, err := postQuery(ts.URL, queryRequest{SQL: "SELECT * FROM loans WHERE good_credit(id) = 1"})
		slowDone <- result{status, err}
	}()
	// Give the slow query a moment to take the slot, then race a 5ms one.
	time.Sleep(50 * time.Millisecond)
	status, _ := mustPostQuery(t, ts.URL, queryRequest{
		SQL:       "SELECT * FROM loans WHERE good_credit(id) = 1",
		TimeoutMS: 5,
	})
	if status != http.StatusRequestTimeout {
		t.Fatalf("queued query status %d, want 408", status)
	}
	if r := <-slowDone; r.err != nil || r.status != http.StatusOK {
		t.Fatalf("slot-holding query: status %d err %v", r.status, r.err)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := testServer(t, 10, 0, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
}

// TestServerFaultingUDFSurfaces: a query whose id column defeats the
// simulated UDF must fail loudly (400 with the fault), not succeed with
// zero rows — the predsql silent-wrong-answer regression, server-side.
func TestServerFaultingUDFSurfaces(t *testing.T) {
	db := predeval.Open(1)
	if err := db.LoadCSV("notes", strings.NewReader("id,tag\nalpha,x\nbeta,y\n")); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("good_credit", labels.Predicate(map[int64]bool{}), 0); err != nil {
		t.Fatal(err)
	}
	srv := newServer(db, serverConfig{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	status, body := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT * FROM notes WHERE good_credit(id) = 1"})
	if status != http.StatusBadRequest {
		t.Fatalf("non-numeric ids: status %d body %s — silent empty result?", status, body)
	}
	if !strings.Contains(string(body), "non-numeric string id") {
		t.Fatalf("fault not surfaced: %s", body)
	}
}

// catalogServer is testServer with the cross-query cache ENABLED and a
// durable catalog attached in dir — the production persistence setup.
// The table and truth are derived from a fixed seed, so successive
// servers simulate restarts over the same data.
func catalogServer(t *testing.T, n int, dir string) (*server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	rng := stats.NewRNG(9)
	var sb strings.Builder
	sb.WriteString("id,grade\n")
	truth := make(map[int64]bool, n)
	grades := []string{"A", "B", "C"}
	sels := []float64{0.9, 0.5, 0.1}
	for i := 0; i < n; i++ {
		truth[int64(i)] = rng.Bernoulli(sels[i%3])
		fmt.Fprintf(&sb, "%d,%s\n", i, grades[i%3])
	}
	db := predeval.Open(1)
	if err := db.LoadCSV("loans", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	calls := new(atomic.Int64)
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		calls.Add(1)
		return truth[v.(int64)]
	}, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.OpenCatalog(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.CloseCatalog() })
	srv := newServer(db, serverConfig{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, calls
}

// TestServerDataDirPersistence drives the persistence wiring end to end:
// serve a workload, flush, "restart" onto the same data dir, and observe
// the repeated workload costing zero evaluations, with the catalog and
// cache counters visible in GET /stats.
func TestServerDataDirPersistence(t *testing.T) {
	dir := t.TempDir()
	const n = 300
	req := queryRequest{SQL: "SELECT * FROM loans WHERE good_credit(id) = 1"}

	srv1, ts1, calls1 := catalogServer(t, n, dir)
	status, body := mustPostQuery(t, ts1.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out1 queryResponse
	if err := json.Unmarshal(body, &out1); err != nil {
		t.Fatal(err)
	}
	if calls1.Load() != n || out1.Stats.CacheMisses != n {
		t.Fatalf("cold run: %d calls, %d misses, want %d", calls1.Load(), out1.Stats.CacheMisses, n)
	}
	srv1.flushCatalog()
	st1 := getStats(t, ts1.URL)
	if st1.Catalog == nil || st1.Catalog.OutcomeRows != n || st1.Catalog.Flushes != 1 {
		t.Fatalf("catalog stats after flush: %+v", st1.Catalog)
	}
	if err := srv1.db.CloseCatalog(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh server, same directory.
	_, ts2, calls2 := catalogServer(t, n, dir)
	status, body = mustPostQuery(t, ts2.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out2 queryResponse
	if err := json.Unmarshal(body, &out2); err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 || out2.Stats.Evaluations != 0 {
		t.Fatalf("warm restart paid %d calls / %d evaluations, want 0", calls2.Load(), out2.Stats.Evaluations)
	}
	if out2.Stats.CacheHits != n {
		t.Fatalf("warm restart cache hits %d, want %d", out2.Stats.CacheHits, n)
	}
	if out2.RowCount != out1.RowCount {
		t.Fatalf("restart changed the answer: %d vs %d rows", out2.RowCount, out1.RowCount)
	}
	st2 := getStats(t, ts2.URL)
	if st2.Catalog == nil || st2.Catalog.OutcomeRows != n {
		t.Fatalf("catalog stats after restart: %+v", st2.Catalog)
	}
	if st2.Cache.Hits != int64(n) {
		t.Fatalf("server cache counters after restart: %+v", st2.Cache)
	}
}

// TestServerCatalogFlusher exercises the periodic flusher: facts become
// durable without an explicit flush call.
func TestServerCatalogFlusher(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := catalogServer(t, 60, dir)
	stop := srv.startCatalogFlusher(10 * time.Millisecond)
	defer stop()
	status, body := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT * FROM loans WHERE good_credit(id) = 1"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.flushes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic flusher never flushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := getStats(t, ts.URL); st.Catalog == nil || st.Catalog.LastFlushUnix == 0 {
		t.Fatalf("flusher not visible in stats: %+v", st.Catalog)
	}
}

// getStats fetches and decodes GET /stats.
func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestServerExplainFlag(t *testing.T) {
	srv, ts := testServer(t, 300, 50*time.Millisecond, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{
		SQL:     "SELECT * FROM loans WHERE good_credit(id) = 1 WITH RECALL 0.8 GROUP ON grade",
		Explain: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out struct {
		Plan []string `json:"plan"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plan) == 0 || !strings.Contains(out.Plan[0], "merge") {
		t.Fatalf("plan %q", out.Plan)
	}
	joined := strings.Join(out.Plan, "\n")
	for _, want := range []string{"group-resolve[pinned] column=grade", "solve[constrained]", "cost"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("plan missing %q:\n%s", want, joined)
		}
	}
	// Each UDF call sleeps 50ms; an instant answer proves nothing executed.
	if srv.served.Load() != 1 {
		t.Fatalf("served %d", srv.served.Load())
	}

	// The EXPLAIN keyword takes the same fast path and payload as the flag.
	status, body = mustPostQuery(t, ts.URL, queryRequest{
		SQL: "  explain SELECT * FROM loans WHERE good_credit(id) = 1",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	out.Plan = nil
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plan) == 0 || !strings.Contains(out.Plan[0], "exact-eval") {
		t.Fatalf("plan %q", out.Plan)
	}
}

func TestServerParseErrorPositions(t *testing.T) {
	_, ts := testServer(t, 60, 0, serverConfig{})
	status, body := mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT *\nFROM loans\nWHERE good_credit(id) = 3"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Line != 3 || er.Col != 25 {
		t.Fatalf("position %d:%d (%s)", er.Line, er.Col, body)
	}
	if !strings.Contains(er.Error, "sqlparse:") {
		t.Fatalf("error %q", er.Error)
	}
	// Engine-level errors carry no position.
	status, body = mustPostQuery(t, ts.URL, queryRequest{SQL: "SELECT * FROM missing WHERE good_credit(id) = 1"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, body)
	}
	er = errorResponse{}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Line != 0 || er.Col != 0 {
		t.Fatalf("unexpected position on engine error: %s", body)
	}
}

func TestServerTables(t *testing.T) {
	_, ts := testServer(t, 123, 0, serverConfig{})
	resp, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Tables []struct {
			Name    string `json:"name"`
			Rows    int    `json:"rows"`
			Columns []struct {
				Name string `json:"name"`
				Type string `json:"type"`
			} `json:"columns"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || out.Tables[0].Name != "loans" || out.Tables[0].Rows != 123 {
		t.Fatalf("tables %+v", out.Tables)
	}
	cols := out.Tables[0].Columns
	if len(cols) != 2 || cols[0].Name != "id" || cols[0].Type != "int" || cols[1].Name != "grade" || cols[1].Type != "string" {
		t.Fatalf("columns %+v", cols)
	}
}
