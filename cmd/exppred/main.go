// Command exppred reproduces the paper's tables and figures.
//
// Usage:
//
//	exppred -list
//	exppred -exp fig1a
//	exppred -exp all -scale 0.25 -iters 10 -seed 7
//
// Every experiment prints the same rows/series the paper reports (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results). -scale shrinks the synthetic datasets proportionally while
// preserving their calibrated statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams (testable): it
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("exppred", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("exp", "", "experiment id, comma-separated list, or 'all'")
		list  = fs.Bool("list", false, "list experiment ids and exit")
		scale = fs.Float64("scale", 1.0, "dataset scale factor (1 = paper sizes)")
		iters = fs.Int("iters", 0, "override per-experiment iteration counts")
		seed  = fs.Uint64("seed", 1, "random seed")
		alpha = fs.Float64("alpha", 0.8, "default precision bound")
		beta  = fs.Float64("beta", 0.8, "default recall bound")
		rho   = fs.Float64("rho", 0.8, "default satisfaction probability")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Fprintf(stdout, "%-16s %s\n", id, e.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "exppred: specify -exp <id>|all or -list")
		fs.Usage()
		return 2
	}

	runner := experiments.New(experiments.Config{
		Seed:       *seed,
		Scale:      *scale,
		Iterations: *iters,
		Alpha:      *alpha,
		Beta:       *beta,
		Rho:        *rho,
		Out:        stdout,
	})

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		start := time.Now()
		if _, err := runner.Run(id); err != nil {
			fmt.Fprintf(stderr, "exppred: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(stdout, "(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
