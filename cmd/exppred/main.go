// Command exppred reproduces the paper's tables and figures.
//
// Usage:
//
//	exppred -list
//	exppred -exp fig1a
//	exppred -exp all -scale 0.25 -iters 10 -seed 7
//
// Every experiment prints the same rows/series the paper reports (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results). -scale shrinks the synthetic datasets proportionally while
// preserving their calibrated statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id, comma-separated list, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		scale = flag.Float64("scale", 1.0, "dataset scale factor (1 = paper sizes)")
		iters = flag.Int("iters", 0, "override per-experiment iteration counts")
		seed  = flag.Uint64("seed", 1, "random seed")
		alpha = flag.Float64("alpha", 0.8, "default precision bound")
		beta  = flag.Float64("beta", 0.8, "default recall bound")
		rho   = flag.Float64("rho", 0.8, "default satisfaction probability")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-16s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "exppred: specify -exp <id>|all or -list")
		flag.Usage()
		os.Exit(2)
	}

	runner := experiments.New(experiments.Config{
		Seed:       *seed,
		Scale:      *scale,
		Iterations: *iters,
		Alpha:      *alpha,
		Beta:       *beta,
		Rho:        *rho,
		Out:        os.Stdout,
	})

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		start := time.Now()
		if _, err := runner.Run(id); err != nil {
			fmt.Fprintf(os.Stderr, "exppred: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
