package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, id := range experiments.IDs() {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing experiment %q:\n%s", id, out.String())
		}
	}
}

func TestRunExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-exp", "table1", "-scale", "0.02", "-iters", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("table1 exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "table1 took") {
		t.Fatalf("experiment did not report its duration:\n%s", out.String())
	}
	if out.Len() == 0 {
		t.Fatal("experiment produced no output")
	}
}

func TestRunCommaSeparatedTrimsSpaces(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-exp", " table1 ", "-scale", "0.02", "-iters", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("whitespace id exited %d: %s", code, errOut.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "no-such-figure"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown experiment exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no-such-figure") {
		t.Fatalf("error does not name the experiment: %s", errOut.String())
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args exited %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
