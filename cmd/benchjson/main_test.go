package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkTable1Example-8   	       1	 123456789 ns/op
BenchmarkIntelSamplePipeline-8 	       2	  98765 ns/op	  42.5 udfcalls/op
PASS
ok  	repro	1.234s
pkg: repro/internal/solver
BenchmarkKnapsack   	    1000	      1234 ns/op	     512 B/op	       3 allocs/op
PASS
ok  	repro/internal/solver	0.567s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	b0 := snap.Benchmarks[0]
	if b0.Name != "Table1Example" || b0.Pkg != "repro" || b0.Procs != 8 || b0.Iterations != 1 {
		t.Fatalf("first benchmark: %+v", b0)
	}
	if b0.Metrics["ns/op"] != 123456789 {
		t.Fatalf("ns/op: %v", b0.Metrics)
	}
	b1 := snap.Benchmarks[1]
	if b1.Metrics["udfcalls/op"] != 42.5 {
		t.Fatalf("custom metric lost: %+v", b1.Metrics)
	}
	b2 := snap.Benchmarks[2]
	if b2.Name != "Knapsack" || b2.Pkg != "repro/internal/solver" || b2.Procs != 1 {
		t.Fatalf("pkg header not tracked: %+v", b2)
	}
	if b2.Metrics["B/op"] != 512 || b2.Metrics["allocs/op"] != 3 {
		t.Fatalf("alloc metrics: %+v", b2.Metrics)
	}
	if snap.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu header: %q", snap.CPU)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-rev", "abc1234", "-o", out}, strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Rev != "abc1234" || len(snap.Benchmarks) != 3 || snap.GoVersion == "" {
		t.Fatalf("snapshot: rev=%q n=%d go=%q", snap.Rev, len(snap.Benchmarks), snap.GoVersion)
	}
}

func TestRunStdout(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, strings.NewReader(sampleBench), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"udfcalls/op": 42.5`) {
		t.Fatalf("stdout snapshot missing metric:\n%s", stdout.String())
	}
}

func TestRunNoBenchmarks(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, strings.NewReader("PASS\nok repro 0.1s\n"), &stdout, &stderr); code != 1 {
		t.Fatalf("empty input exited %d, want 1", code)
	}
}

func TestParseIgnoresMalformedLines(t *testing.T) {
	malformed := "BenchmarkBroken-8 not-a-number 12 ns/op\nBenchmarkOdd-4 3 99\n"
	snap, err := parse(strings.NewReader(malformed))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Fatalf("malformed lines parsed: %+v", snap.Benchmarks)
	}
}
