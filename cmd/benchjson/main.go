// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON perf snapshot, so CI can archive one
// BENCH_<rev>.json artifact per revision and the project's performance
// trajectory can be tracked and diffed over time.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x ./... | benchjson -rev abc1234 -o BENCH_abc1234.json
//
// Every benchmark line becomes one entry carrying the package, the
// benchmark name, GOMAXPROCS suffix, iteration count and every reported
// metric (ns/op, B/op, allocs/op and custom b.ReportMetric units like
// udfcalls/op). Non-benchmark lines are ignored, so the raw `go test`
// stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark's name without the "Benchmark" prefix or the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the `pkg:` header).
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted JSON document.
type Snapshot struct {
	// Rev identifies the source revision (-rev).
	Rev string `json:"rev"`
	// GoVersion and Host describe the toolchain and platform.
	GoVersion string `json:"go_version"`
	Host      string `json:"host"`
	// CPU echoes the `cpu:` header when the bench output carried one.
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rev := fs.String("rev", "dev", "revision identifier recorded in the snapshot")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	snap, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}
	snap.Rev = *rev
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parse consumes `go test -bench` output and collects benchmark lines.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion: runtime.Version(),
		Host:      runtime.GOOS + "/" + runtime.GOARCH,
	}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkFig1a-8   2   123456 ns/op   42.0 udfcalls/op
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, iterations, and at least one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	metrics := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		metrics[fields[i+1]] = v
	}
	return Benchmark{Name: name, Pkg: pkg, Procs: procs, Iterations: iters, Metrics: metrics}, true
}
