package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/table"
)

func TestWriteTableAndLabels(t *testing.T) {
	spec := dataset.Prosper.Scaled(0.01)
	d, err := dataset.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "p.csv")
	if err := writeTable(d.Table, dataPath); err != nil {
		t.Fatal(err)
	}
	labelsPath := filepath.Join(dir, "p_labels.csv")
	if err := writeLabels(d, labelsPath); err != nil {
		t.Fatal(err)
	}

	// The data CSV round-trips through the table reader.
	f, err := os.Open(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tbl, err := table.ReadCSV("p", f)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != d.Table.NumRows() {
		t.Fatalf("rows %d want %d", tbl.NumRows(), d.Table.NumRows())
	}

	// The labels file has one line per row plus the header, and the label
	// counts match the dataset.
	raw, err := os.ReadFile(labelsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != d.Table.NumRows()+1 {
		t.Fatalf("labels lines %d want %d", len(lines), d.Table.NumRows()+1)
	}
	ones := 0
	for _, line := range lines[1:] {
		if strings.HasSuffix(line, ",1") {
			ones++
		}
	}
	if ones != d.TotalCorrect() {
		t.Fatalf("labels file has %d ones, dataset has %d correct", ones, d.TotalCorrect())
	}
}

func TestWriteTableBadPath(t *testing.T) {
	spec := dataset.Prosper.Scaled(0.01)
	d, err := dataset.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeTable(d.Table, "/no/such/dir/x.csv"); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := writeLabels(d, "/no/such/dir/x.csv"); err == nil {
		t.Fatal("bad path accepted")
	}
}
