// Command datagen emits the calibrated synthetic datasets as CSV files:
// one file with the visible relation and one with the hidden ground-truth
// labels (the UDF oracle), so external tools — and cmd/predsql — can
// replay the paper's protocol.
//
// Usage:
//
//	datagen -dataset lc -out ./data            # writes lc.csv + lc_labels.csv
//	datagen -dataset all -scale 0.1 -seed 7 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/table"
)

func main() {
	var (
		name  = flag.String("dataset", "all", "dataset name (lc, prosper, census, marketing) or 'all'")
		scale = flag.Float64("scale", 1.0, "dataset scale factor")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	specs := dataset.All()
	if *name != "all" {
		spec, err := dataset.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		specs = []dataset.Spec{spec}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	for _, spec := range specs {
		if *scale != 1 {
			spec = spec.Scaled(*scale)
		}
		d, err := dataset.Generate(spec, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		dataPath := filepath.Join(*out, spec.Name+".csv")
		if err := writeTable(d.Table, dataPath); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		labelsPath := filepath.Join(*out, spec.Name+"_labels.csv")
		if err := writeLabels(d, labelsPath); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d rows → %s (labels: %s, selectivity %.3f)\n",
			spec.Name, d.Table.NumRows(), dataPath, labelsPath, d.OverallSelectivity())
	}
}

func writeTable(tbl *table.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return table.WriteCSV(tbl, f)
}

func writeLabels(d *dataset.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "id,label"); err != nil {
		return err
	}
	for id, label := range d.Labels {
		v := 0
		if label {
			v = 1
		}
		if _, err := fmt.Fprintf(f, "%d,%d\n", id, v); err != nil {
			return err
		}
	}
	return nil
}
