package main

// Label loading and the typed-id predicate are exercised in
// internal/labels; the repeatable -table flag in internal/cliutil. This
// file keeps a smoke check that the pieces wire together for this command.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/labels"
)

func TestLoadLabelsWiring(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.csv")
	if err := os.WriteFile(path, []byte("id,label\n0,1\n1,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := labels.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pred := labels.Predicate(m)
	if !pred(int64(0)) || pred(int64(1)) {
		t.Fatalf("labels %v mis-predicated", m)
	}
}
