package main

// Label loading and the typed-id predicate are exercised in
// internal/labels; the repeatable -table flag in internal/cliutil. This
// file keeps a smoke check that the pieces wire together for this command.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/labels"
)

func TestLoadLabelsWiring(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.csv")
	if err := os.WriteFile(path, []byte("id,label\n0,1\n1,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := labels.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pred := labels.Predicate(m)
	if !pred(int64(0)) || pred(int64(1)) {
		t.Fatalf("labels %v mis-predicated", m)
	}
}

// TestAnalyzeWiring covers what -analyze does: the query runs with
// QueryOptions.Analyze and the annotated plan is printable afterwards.
func TestAnalyzeWiring(t *testing.T) {
	db := predeval.Open(1)
	if err := db.LoadCSV("t", strings.NewReader("id\n0\n1\n2\n")); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("f", func(v any) bool { return v.(int64) > 0 }, 0); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContextOptions(context.Background(),
		"SELECT * FROM t WHERE f(id) = 1", predeval.QueryOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d, want 2", rows.Len())
	}
	plan := strings.Join(rows.Plan(), "\n")
	if len(rows.Plan()) == 0 || !strings.Contains(plan, "(actual ") {
		t.Fatalf("plan not annotated:\n%s", plan)
	}
}
