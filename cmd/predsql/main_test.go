package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadLabels(t *testing.T) {
	path := writeTemp(t, "labels.csv", "id,label\n0,1\n1,0\n2,true\n3,TRUE\n4,0\n")
	labels, err := loadLabels(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{0: true, 1: false, 2: true, 3: true, 4: false}
	if len(labels) != len(want) {
		t.Fatalf("got %d labels", len(labels))
	}
	for id, v := range want {
		if labels[id] != v {
			t.Fatalf("label[%d] = %v, want %v", id, labels[id], v)
		}
	}
}

func TestLoadLabelsErrors(t *testing.T) {
	if _, err := loadLabels("/no/such/file"); err == nil {
		t.Fatal("missing file accepted")
	}
	short := writeTemp(t, "short.csv", "id\n0\n")
	if _, err := loadLabels(short); err == nil {
		t.Fatal("single-column labels accepted")
	}
	badID := writeTemp(t, "bad.csv", "id,label\nxyz,1\n")
	if _, err := loadLabels(badID); err == nil {
		t.Fatal("non-numeric id accepted")
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a=1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b=2"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a=1,b=2" {
		t.Fatalf("string %q", m.String())
	}
	if len(m) != 2 {
		t.Fatalf("len %d", len(m))
	}
}
