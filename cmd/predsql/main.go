// Command predsql runs the library's SQL dialect against CSV files. The
// expensive UDF is simulated from a hidden-labels CSV (id,label), matching
// the paper's evaluation protocol and the files cmd/datagen writes.
//
// Usage:
//
//	predsql -table loans=lc.csv -truth lc_labels.csv -udf good_credit \
//	        -sql "SELECT * FROM loans WHERE good_credit(id) = 1 \
//	              WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8"
//
// The command prints the execution statistics (UDF calls, cost, chosen
// correlated column) and the first rows of the result.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		tables multiFlag
		truth  = flag.String("truth", "", "labels CSV (id,label) backing the simulated UDF")
		udf    = flag.String("udf", "good_credit", "UDF name to register")
		sqlStr = flag.String("sql", "", "query to run")
		seed   = flag.Uint64("seed", 1, "random seed")
		limit  = flag.Int("limit", 10, "max rows to print")
	)
	flag.Var(&tables, "table", "name=path CSV table (repeatable)")
	flag.Parse()

	if len(tables) == 0 || *truth == "" || *sqlStr == "" {
		fmt.Fprintln(os.Stderr, "predsql: -table, -truth and -sql are required")
		flag.Usage()
		os.Exit(2)
	}

	db := predeval.Open(*seed)
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -table %q, want name=path", spec))
		}
		if err := db.LoadCSVFile(name, path); err != nil {
			fatal(err)
		}
	}

	labels, err := loadLabels(*truth)
	if err != nil {
		fatal(err)
	}
	err = db.RegisterUDF(*udf, func(v any) bool {
		id, ok := v.(int64)
		if !ok {
			return false
		}
		return labels[id]
	}, 0)
	if err != nil {
		fatal(err)
	}

	rows, err := db.Query(*sqlStr)
	if err != nil {
		fatal(err)
	}
	st := rows.Stats()
	fmt.Printf("rows: %d\nUDF calls: %d\nretrievals: %d\ncost: %.0f\n",
		rows.Len(), st.Evaluations, st.Retrievals, st.Cost)
	if st.ChosenColumn != "" {
		fmt.Printf("correlated column: %s\n", st.ChosenColumn)
	}
	if st.Exact {
		fmt.Println("mode: exact")
	} else {
		fmt.Println("mode: approximate")
	}
	fmt.Println(strings.Join(rows.Columns(), ","))
	for i := 0; i < rows.Len() && i < *limit; i++ {
		fmt.Println(strings.Join(rows.Row(i), ","))
	}
	if rows.Len() > *limit {
		fmt.Printf("... (%d more rows)\n", rows.Len()-*limit)
	}
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func loadLabels(path string) (map[int64]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("predsql: empty labels file %s", path)
	}
	labels := make(map[int64]bool, len(records)-1)
	for _, rec := range records[1:] {
		if len(rec) < 2 {
			return nil, fmt.Errorf("predsql: labels file needs id,label columns")
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, err
		}
		labels[id] = rec[1] == "1" || strings.EqualFold(rec[1], "true")
	}
	return labels, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predsql:", err)
	os.Exit(1)
}
