// Command predsql runs the library's SQL dialect against CSV files. The
// expensive UDF is simulated from a hidden-labels CSV (id,label), matching
// the paper's evaluation protocol and the files cmd/datagen writes.
//
// Usage:
//
//	predsql -table loans=lc.csv -truth lc_labels.csv -udf good_credit \
//	        -sql "SELECT * FROM loans WHERE good_credit(id) = 1 \
//	              WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8"
//
// The command prints the execution statistics (UDF calls, cost, chosen
// correlated column) and the first rows of the result. With -analyze the
// query runs under EXPLAIN ANALYZE instrumentation and the annotated
// operator tree (measured rows, UDF calls, cache traffic, retries and
// per-operator wall time) is printed after the result. With -stream the
// rows print incrementally as execution produces them, and -limit stops
// evaluation early instead of merely truncating the printout; the stats
// follow the rows and cover only the work performed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cliutil"
	"repro/internal/labels"
)

func main() {
	var (
		tables  cliutil.MultiFlag
		truth   = flag.String("truth", "", "labels CSV (id,label) backing the simulated UDF")
		udf     = flag.String("udf", "good_credit", "UDF name to register")
		sqlStr  = flag.String("sql", "", "query to run")
		seed    = flag.Uint64("seed", 1, "random seed")
		limit   = flag.Int("limit", 10, "max rows to print")
		analyze = flag.Bool("analyze", false, "run under EXPLAIN ANALYZE and print the annotated plan after the result")
		stream  = flag.Bool("stream", false, "stream rows as produced (-limit stops evaluation early); stats print after the rows")
	)
	flag.Var(&tables, "table", "name=path CSV table (repeatable)")
	flag.Parse()

	if len(tables) == 0 || *truth == "" || *sqlStr == "" {
		fmt.Fprintln(os.Stderr, "predsql: -table, -truth and -sql are required")
		flag.Usage()
		os.Exit(2)
	}

	db := predeval.Open(*seed)
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -table %q, want name=path", spec))
		}
		if err := db.LoadCSVFile(name, path); err != nil {
			fatal(err)
		}
	}

	truthLabels, err := labels.LoadFile(*truth)
	if err != nil {
		fatal(err)
	}
	// labels.Predicate accepts int64/float64/string ids and faults (query
	// error) on anything else — a silently-false UDF here used to make every
	// query "succeed" with zero rows whenever the id column inferred as
	// Float or String.
	if err := db.RegisterUDF(*udf, labels.Predicate(truthLabels), 0); err != nil {
		fatal(err)
	}

	if *stream {
		if *analyze {
			fatal(fmt.Errorf("-stream and -analyze are mutually exclusive"))
		}
		runStream(db, *sqlStr, *limit)
		return
	}

	rows, err := db.QueryContextOptions(context.Background(), *sqlStr,
		predeval.QueryOptions{Analyze: *analyze})
	if err != nil {
		fatal(err)
	}
	st := rows.Stats()
	fmt.Printf("rows: %d\nUDF calls: %d\nretrievals: %d\nsampled: %d\ncost: %.0f\n",
		rows.Len(), st.Evaluations, st.Retrievals, st.Sampled, st.Cost)
	if st.ChosenColumn != "" {
		fmt.Printf("correlated column: %s\n", st.ChosenColumn)
	}
	if st.Exact {
		fmt.Println("mode: exact")
	} else {
		fmt.Println("mode: approximate")
	}
	fmt.Println(strings.Join(rows.Columns(), ","))
	for i := 0; i < rows.Len() && i < *limit; i++ {
		fmt.Println(strings.Join(rows.Row(i), ","))
	}
	if rows.Len() > *limit {
		fmt.Printf("... (%d more rows)\n", rows.Len()-*limit)
	}
	if plan := rows.Plan(); len(plan) > 0 {
		fmt.Println()
		fmt.Println(strings.Join(plan, "\n"))
	}
}

// runStream prints rows as the engine produces them: columns first, then
// one CSV line per row. With a limit, evaluation stops once the limit is
// reached — unevaluated rows are never paid for — and the trailing stats
// cover only the work performed.
func runStream(db *predeval.DB, sqlStr string, limit int) {
	res, err := db.QueryStream(context.Background(), sqlStr,
		predeval.StreamOptions{Limit: limit},
		func(_ []int, cells [][]string) error {
			for _, row := range cells {
				fmt.Println(strings.Join(row, ","))
			}
			return nil
		})
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("columns: %s\n", strings.Join(res.Columns, ","))
	fmt.Printf("rows: %d", res.RowCount)
	if res.Truncated {
		fmt.Printf(" (stopped at limit)")
	}
	fmt.Printf("\nUDF calls: %d\nretrievals: %d\nsampled: %d\ncost: %.0f\n",
		st.Evaluations, st.Retrievals, st.Sampled, st.Cost)
	if st.ChosenColumn != "" {
		fmt.Printf("correlated column: %s\n", st.ChosenColumn)
	}
	if st.Exact {
		fmt.Println("mode: exact")
	} else {
		fmt.Println("mode: approximate")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predsql:", err)
	os.Exit(1)
}
