package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseSnap = `{"rev":"old","benchmarks":[
	{"name":"ParallelExact/parallelism=1","procs":8,"iterations":3,"metrics":{"ns/op":1400}},
	{"name":"ParallelExact/parallelism=8","procs":8,"iterations":3,"metrics":{"ns/op":1000}},
	{"name":"ParallelExact/parallelism=8","procs":8,"iterations":3,"metrics":{"ns/op":1100}},
	{"name":"CatalogWarmRestart","procs":8,"iterations":1,"metrics":{"ns/op":500}}
]}`

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBenchdiffOK(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", baseSnap)
	cur := writeSnap(t, dir, "cur.json", `{"rev":"new","benchmarks":[
		{"name":"ParallelExact","metrics":{"ns/op":1200}},
		{"name":"CatalogWarmRestart","metrics":{"ns/op":400}}
	]}`)
	// Best-of base is 1000; 1200 is +20% < 25%.
	code, out, errb := runDiff(t, "-base", base, "-cur", cur, "ParallelExact", "CatalogWarmRestart")
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out, errb)
	}
	if !strings.Contains(out, "ParallelExact") || !strings.Contains(out, "ok") {
		t.Fatalf("output %q", out)
	}
}

func TestBenchdiffRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", baseSnap)
	cur := writeSnap(t, dir, "cur.json", `{"rev":"new","benchmarks":[
		{"name":"ParallelExact","metrics":{"ns/op":1300}},
		{"name":"CatalogWarmRestart","metrics":{"ns/op":500}}
	]}`)
	code, out, _ := runDiff(t, "-base", base, "-cur", cur, "ParallelExact", "CatalogWarmRestart")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("output %q", out)
	}
}

func TestBenchdiffThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", baseSnap)
	cur := writeSnap(t, dir, "cur.json", `{"rev":"new","benchmarks":[
		{"name":"ParallelExact","metrics":{"ns/op":1300}}
	]}`)
	code, _, _ := runDiff(t, "-base", base, "-cur", cur, "-max-regress", "0.5", "ParallelExact")
	if code != 0 {
		t.Fatalf("exit %d, want 0 at 50%% threshold", code)
	}
}

func TestBenchdiffMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", baseSnap)
	cur := writeSnap(t, dir, "cur.json", `{"rev":"new","benchmarks":[
		{"name":"ParallelExact","metrics":{"ns/op":900}}
	]}`)
	code, _, errb := runDiff(t, "-base", base, "-cur", cur, "ParallelExact", "CatalogWarmRestart")
	if code != 1 {
		t.Fatalf("exit %d, want 1 for missing benchmark", code)
	}
	if !strings.Contains(errb, "CatalogWarmRestart") {
		t.Fatalf("stderr %q", errb)
	}
}

func TestBenchdiffPerBenchmarkThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", baseSnap)
	cur := writeSnap(t, dir, "cur.json", `{"rev":"new","benchmarks":[
		{"name":"ParallelExact","metrics":{"ns/op":1100}},
		{"name":"CatalogWarmRestart","metrics":{"ns/op":900}}
	]}`)
	// CatalogWarmRestart is +80%: over the default 25% gate, under its own
	// 100% override. ParallelExact (+10%) stays under the default.
	code, out, errb := runDiff(t, "-base", base, "-cur", cur,
		"ParallelExact", "CatalogWarmRestart:1.0")
	if code != 0 {
		t.Fatalf("exit %d, want 0 with per-benchmark threshold\n%s%s", code, out, errb)
	}
	// Without the override the same diff must fail.
	code, out, _ = runDiff(t, "-base", base, "-cur", cur,
		"ParallelExact", "CatalogWarmRestart")
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("exit %d (%q), want default-threshold failure", code, out)
	}
	// A malformed threshold is a usage error, not a silent pass.
	if code, _, _ := runDiff(t, "-base", base, "-cur", cur, "CatalogWarmRestart:fast"); code != 2 {
		t.Fatalf("exit %d, want 2 for malformed threshold", code)
	}
}

func TestBenchdiffNewBenchmarkNotInBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", baseSnap)
	cur := writeSnap(t, dir, "cur.json", `{"rev":"new","benchmarks":[
		{"name":"ParallelExact","metrics":{"ns/op":900}},
		{"name":"CatalogWarmRestart","metrics":{"ns/op":400}},
		{"name":"BatchScanFilter1M/fused","metrics":{"ns/op":100}}
	]}`)
	// BatchScanFilter1M is absent from the baseline: a freshly added
	// benchmark must pass the gate (it has nothing to diff against yet),
	// not fail it.
	code, out, errb := runDiff(t, "-base", base, "-cur", cur,
		"ParallelExact", "CatalogWarmRestart", "BatchScanFilter1M")
	if code != 0 {
		t.Fatalf("exit %d, want 0 for a benchmark new in current\n%s%s", code, out, errb)
	}
	if !strings.Contains(out, "nothing to diff") {
		t.Fatalf("output %q, want the new-benchmark note", out)
	}
}

func TestBenchdiffUsage(t *testing.T) {
	if code, _, _ := runDiff(t, "-base", "x.json"); code != 2 {
		t.Fatalf("missing args: exit %d, want 2", code)
	}
	dir := t.TempDir()
	base := writeSnap(t, dir, "bad.json", "{not json")
	if code, _, _ := runDiff(t, "-base", base, "-cur", base, "X"); code != 2 {
		t.Fatalf("bad json: exit %d, want 2", code)
	}
}
