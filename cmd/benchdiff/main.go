// Command benchdiff compares two benchjson perf snapshots and fails when a
// watched benchmark regressed beyond a threshold, so CI can gate merges on
// the committed BENCH_<rev>.json baseline.
//
// Usage:
//
//	benchdiff -base BENCH_old.json -cur BENCH_new.json \
//	          -metric ns/op -max-regress 0.25 ParallelExact CatalogWarmRestart
//
// Benchmark names are given without the "Benchmark" prefix (matching the
// snapshot's name field); a name also matches its sub-benchmarks
// ("ParallelExact" covers "ParallelExact/parallelism=8"). A name may
// carry a per-benchmark threshold as "Name:0.5", overriding -max-regress
// for that benchmark alone — the escape hatch for I/O-bound benchmarks
// (fsync-heavy catalog work) whose wall time legitimately swings more
// across runner machines than a CPU-bound benchmark's. When several
// entries match one name (sub-benchmarks, repeat counts, GOMAXPROCS
// variants), the best (minimum) metric value wins — the standard
// noise-resistant reading of a benchmark. A watched benchmark missing
// from the CURRENT snapshot is an error: a gate that silently stops
// measuring is worse than a red build. Missing from the BASELINE only is
// fine — that is how a freshly added benchmark enters the gate, with
// nothing to diff against yet.
//
// Exit status: 0 ok, 1 regression (or missing benchmark), 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// benchmark mirrors cmd/benchjson's entry (only the fields the diff needs).
type benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// snapshot mirrors cmd/benchjson's document.
type snapshot struct {
	Rev        string      `json:"rev"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "", "baseline snapshot (required)")
	cur := fs.String("cur", "", "current snapshot (required)")
	metric := fs.String("metric", "ns/op", "metric to compare")
	maxRegress := fs.Float64("max-regress", 0.25, "maximum allowed relative regression (0.25 = +25%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	names := fs.Args()
	if *base == "" || *cur == "" || len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: -base, -cur and at least one benchmark name are required")
		fs.Usage()
		return 2
	}
	baseSnap, err := load(*base)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	curSnap, err := load(*cur)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	failed := false
	for _, name := range names {
		limit := *maxRegress
		if base, spec, ok := strings.Cut(name, ":"); ok {
			v, err := strconv.ParseFloat(spec, 64)
			if err != nil {
				fmt.Fprintf(stderr, "benchdiff: bad per-benchmark threshold %q: %v\n", name, err)
				return 2
			}
			name, limit = base, v
		}
		b, okB := best(baseSnap, name, *metric)
		c, okC := best(curSnap, name, *metric)
		switch {
		case !okB && okC:
			// A benchmark added since the baseline: nothing to diff against,
			// it becomes gated once this snapshot is someone's baseline.
			fmt.Fprintf(stdout, "benchdiff: %-24s %s %12s → %12.4g  new in %s; nothing to diff\n",
				name, *metric, "-", c, curSnap.Rev)
		case !okC:
			fmt.Fprintf(stderr, "benchdiff: %s: no %s in current %s (rev %s)\n", name, *metric, *cur, curSnap.Rev)
			failed = true
		default:
			rel := math.Inf(1)
			if b > 0 {
				rel = (c - b) / b
			} else if c == 0 {
				rel = 0
			}
			verdict := "ok"
			if rel > limit {
				verdict = fmt.Sprintf("REGRESSION (> +%.0f%%)", limit*100)
				failed = true
			}
			fmt.Fprintf(stdout, "benchdiff: %-24s %s %12.4g → %12.4g  (%+.1f%%)  %s\n",
				name, *metric, b, c, rel*100, verdict)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// load reads one snapshot file.
func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// best returns the minimum value of metric over every entry matching name
// (exactly, or as a sub-benchmark "name/...").
func best(s *snapshot, name, metric string) (float64, bool) {
	val, ok := 0.0, false
	for _, b := range s.Benchmarks {
		if b.Name != name && !strings.HasPrefix(b.Name, name+"/") {
			continue
		}
		v, has := b.Metrics[metric]
		if !has {
			continue
		}
		if !ok || v < val {
			val, ok = v, true
		}
	}
	return val, ok
}
