package predeval

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/stats"
)

// loanCSV builds a CSV with a grade column correlated to the hidden label.
func loanCSV(n int, seed uint64) (string, map[int64]bool) {
	rng := stats.NewRNG(seed)
	var sb strings.Builder
	sb.WriteString("id,grade,income\n")
	truth := make(map[int64]bool, n)
	sels := []float64{0.9, 0.5, 0.1}
	grades := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		g := i % 3
		label := rng.Bernoulli(sels[g])
		truth[int64(i)] = label
		income := 40000.5 + rng.Float64()*50000
		fmt.Fprintf(&sb, "%d,%s,%.2f\n", i, grades[g], income)
	}
	return sb.String(), truth
}

func openLoanDB(t *testing.T, n int) (*DB, map[int64]bool) {
	t.Helper()
	csv, truth := loanCSV(n, 9)
	db := Open(1)
	if err := db.LoadCSV("loans", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterUDF("good_credit", func(v any) bool {
		return truth[v.(int64)]
	}, 3); err != nil {
		t.Fatal(err)
	}
	return db, truth
}

func TestQueryExact(t *testing.T) {
	db, truth := openLoanDB(t, 600)
	rows, err := db.Query("SELECT id, grade FROM loans WHERE good_credit(id) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Stats().Exact {
		t.Fatal("expected exact stats")
	}
	want := 0
	for _, v := range truth {
		if v {
			want++
		}
	}
	if rows.Len() != want {
		t.Fatalf("rows %d want %d", rows.Len(), want)
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "id" || cols[1] != "grade" {
		t.Fatalf("columns %v", cols)
	}
	if len(rows.Row(0)) != 2 {
		t.Fatalf("row cells %v", rows.Row(0))
	}
}

func TestQueryApproximate(t *testing.T) {
	db, truth := openLoanDB(t, 3000)
	rows, err := db.Query(`SELECT * FROM loans WHERE good_credit(id) = 1
		WITH PRECISION 0.8 RECALL 0.8 PROBABILITY 0.8`)
	if err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	if st.Exact {
		t.Fatal("approximate query reported exact")
	}
	if st.Evaluations >= 3000 {
		t.Fatalf("no savings: %d evaluations", st.Evaluations)
	}
	if st.ChosenColumn != "grade" {
		t.Fatalf("chosen column %q", st.ChosenColumn)
	}
	// Quality check against ground truth.
	total := 0
	for _, v := range truth {
		if v {
			total++
		}
	}
	correct := 0
	for _, id := range rows.RowIDs() {
		if truth[int64(id)] {
			correct++
		}
	}
	prec := float64(correct) / float64(rows.Len())
	recall := float64(correct) / float64(total)
	if prec < 0.7 || recall < 0.7 {
		t.Fatalf("precision %v recall %v", prec, recall)
	}
	if st.Cost <= 0 || st.Retrievals <= 0 {
		t.Fatalf("stats %+v", st)
	}
	// Regression: the engine's Sampled count must survive the trip through
	// the public Stats, so callers can split estimation from execution
	// cost. On this cold cache every sampled tuple was also charged.
	if st.Sampled <= 0 || st.Sampled > st.Evaluations {
		t.Fatalf("Sampled %d not in (0, Evaluations=%d]", st.Sampled, st.Evaluations)
	}
}

func TestQueryBudget(t *testing.T) {
	db, _ := openLoanDB(t, 3000)
	rows, err := db.Query(`SELECT * FROM loans WHERE good_credit(id) = 1
		WITH PRECISION 0.8 PROBABILITY 0.8 GROUP ON grade BUDGET 4000`)
	if err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	if st.AchievedRecallBound <= 0 {
		t.Fatalf("achieved recall bound %v", st.AchievedRecallBound)
	}
}

func TestQueryParseError(t *testing.T) {
	db, _ := openLoanDB(t, 90)
	if _, err := db.Query("SELECT FROM"); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if _, err := db.Query("SELECT * FROM missing WHERE good_credit(id) = 1"); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := db.Query("SELECT * FROM loans WHERE nope(id) = 1"); err == nil {
		t.Fatal("missing UDF accepted")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := Open(1)
	if err := db.LoadCSV("bad", strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if err := db.LoadCSVFile("x", "/no/such/file.csv"); err == nil {
		t.Fatal("missing file accepted")
	}
	csv, _ := loanCSV(10, 1)
	if err := db.LoadCSV("t", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadCSV("t", strings.NewReader(csv)); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestRegisterUDFErrors(t *testing.T) {
	db := Open(1)
	if err := db.RegisterUDF("f", nil, 1); err == nil {
		t.Fatal("nil UDF accepted")
	}
	if err := db.RegisterUDF("f", func(any) bool { return true }, -1); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestSetCosts(t *testing.T) {
	db := Open(1)
	if err := db.SetCosts(2, 10); err != nil {
		t.Fatal(err)
	}
	if err := db.SetCosts(-1, 1); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestNumRows(t *testing.T) {
	db, _ := openLoanDB(t, 50)
	n, err := db.NumRows("loans")
	if err != nil || n != 50 {
		t.Fatalf("NumRows %d %v", n, err)
	}
	if _, err := db.NumRows("missing"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestQueryJoinSQL(t *testing.T) {
	db, _ := openLoanDB(t, 900)
	var sb strings.Builder
	sb.WriteString("loan_id\n")
	rng := stats.NewRNG(3)
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "%d\n", rng.IntN(900))
	}
	if err := db.LoadCSV("orders", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT * FROM loans JOIN orders ON loans.id = orders.loan_id
		WHERE good_credit(id) = 1 WITH PRECISION 0.7 RECALL 0.7 PROBABILITY 0.8 GROUP ON grade`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("join query returned nothing")
	}
	if rows.Stats().Evaluations >= 900 {
		t.Fatalf("no savings: %d", rows.Stats().Evaluations)
	}
}

func TestEngineAccessor(t *testing.T) {
	db := Open(1)
	if db.Engine() == nil {
		t.Fatal("nil engine")
	}
}
